package sched

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// TestSortIDsMatchesInsertionSort proves the pdqsort path produces the
// EXACT permutation insertionSort (stable) produces, at sizes well
// past the cutoff and with heavy ties — the schedulers' float
// accumulation order rides on this. The call sites always enumerate
// ids in ascending order first, which the test mirrors: under that
// precondition the id tie-break reproduces stability.
func TestSortIDsMatchesInsertionSort(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{0, 1, 8, 32, 33, 100, 1000, 5000} {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(int(r.Range(0, 5))) // few distinct values: tie-heavy
		}
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = i, i // ascending ids, as at the call sites
		}
		less := func(x, y int) bool { return keys[x] < keys[y] }
		sortIDs(a, less)
		insertionSort(b, less)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: sortIDs and insertionSort permutations differ", n)
		}
	}
}

// TestSelectIDsMatchesSortPrefix proves the quickselect used by the
// two-tier prune produces EXACTLY the k-prefix a full sortIDs pass
// would: byte-identical pruned placements depend on it. The comparator
// is tie-heavy and made total with an id tie-break, as at the call
// site.
func TestSelectIDsMatchesSortPrefix(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 8, 33, 100, 1000, 5000} {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(int(r.Range(0, 5))) // few distinct values: tie-heavy
		}
		less := func(x, y int) bool {
			if keys[x] != keys[y] {
				return keys[x] < keys[y]
			}
			return x < y
		}
		for _, k := range []int{1, 2, 4, 32, 33, n / 2, n - 1, n, n + 10} {
			if k < 1 {
				continue
			}
			a := make([]int, n)
			b := make([]int, n)
			for i := 0; i < n; i++ {
				a[i], b[i] = i, i
			}
			sortIDs(b, less)
			selectIDs(a, k, less)
			kk := k
			if kk > n {
				kk = n
			}
			if !reflect.DeepEqual(a[:kk], b[:kk]) {
				t.Fatalf("n=%d k=%d: selectIDs prefix differs from sorted prefix", n, k)
			}
		}
	}
}

// TestCountedBookkeepingMatchesScan drives a counted and an uncounted
// state through an identical operation sequence and checks the cached
// counts and map-based Release against the legacy scans after every
// step.
func TestCountedBookkeepingMatchesScan(t *testing.T) {
	const n = 24
	counted := StateFromProfiles(spec, n)
	counted.Recount()
	plain := StateFromProfiles(spec, n)

	check := func(step string) {
		t.Helper()
		scanOnline := plain.OnlineServers()
		scanActive := plain.ActiveServers()
		if counted.OnlineServers() != scanOnline {
			t.Fatalf("%s: online %d != scan %d", step, counted.OnlineServers(), scanOnline)
		}
		if counted.ActiveServers() != scanActive {
			t.Fatalf("%s: active %d != scan %d", step, counted.ActiveServers(), scanActive)
		}
	}

	r := rng.New(17)
	names := []string{}
	for i := 0; i < 60; i++ {
		switch r.Intn(4) {
		case 0, 1: // commit
			in := inputFor(workload.MatMul(), 0)
			in.Name = fmt.Sprintf("wl-%d", i)
			in.Placement = []int{r.Intn(n)}
			counted.Commit(in, SLA{})
			plain.Commit(in, SLA{})
			names = append(names, in.Name)
		case 2: // release (sometimes a missing name)
			nm := "absent"
			if len(names) > 0 && r.Intn(4) != 0 {
				k := r.Intn(len(names))
				nm = names[k]
				names = append(names[:k], names[k+1:]...)
			}
			a := counted.Release(nm)
			b := plain.Release(nm)
			if a != b {
				t.Fatalf("step %d: Release(%q) counted=%v plain=%v", i, nm, a, b)
			}
		case 3: // toggle a server
			s := r.Intn(n)
			down := r.Intn(2) == 0
			counted.SetOffline(s, down)
			plain.SetOffline(s, down)
		}
		check(fmt.Sprintf("step %d", i))
		if !reflect.DeepEqual(counted.Used, plain.Used) {
			t.Fatalf("step %d: Used diverged", i)
		}
		if len(counted.Running) != len(plain.Running) {
			t.Fatalf("step %d: Running diverged", i)
		}
	}
}

// TestShardedLegacyEquivalence: at testbed size (8 <= windowBase) a
// ShardedState run — any shard count — must be bit-identical to
// driving a plain State directly: same placements, same Used floats.
func TestShardedLegacyEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		legacy := StateFromProfiles(spec, 8)
		ss := ShardedStateFromProfiles(spec, 8, shards)
		g1 := NewGsight(&stubPredictor{ipc: 2})
		g2 := NewGsight(&stubPredictor{ipc: 2})
		for i := 0; i < 12; i++ {
			in := inputFor(workload.MatMul(), 0)
			in.Name = fmt.Sprintf("wl-%d", i)
			req1 := &Request{Input: in, SLA: SLA{MinIPC: 0.5}}
			req2 := &Request{Input: in, SLA: SLA{MinIPC: 0.5}}
			p1, err1 := g1.Place(legacy, req1)
			p2, err2 := ss.Propose(g2, req2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("shards=%d wl %d: err %v vs %v", shards, i, err1, err2)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("shards=%d wl %d: placement %v vs %v", shards, i, p1, p2)
			}
			if err1 == nil {
				in1 := in
				in1.Placement = p1
				legacy.Commit(in1, req1.SLA)
				in2 := in
				in2.Placement = p2
				ss.Commit(in2, req2.SLA)
			}
			if i == 6 {
				legacy.Release("wl-2")
				ss.Release("wl-2")
			}
		}
		for s := 0; s < 8; s++ {
			for k := range legacy.Used[s] {
				if legacy.Used[s][k] != ss.Base().Used[s][k] {
					t.Fatalf("shards=%d server %d kind %d: Used %v != %v (must be bit-identical)",
						shards, s, k, ss.Base().Used[s][k], legacy.Used[s][k])
				}
			}
		}
	}
}

// TestForcedTxnConflict commits two transactions that touch the same
// server: the first (lower request-seq) wins deterministically, the
// second fails with ErrTxnConflict and succeeds after re-proposing
// against the refreshed state.
func TestForcedTxnConflict(t *testing.T) {
	ss := ShardedStateFromProfiles(spec, 4, 2)
	g := NewGsight(&stubPredictor{ipc: 2})

	inA := inputFor(workload.MatMul(), 0)
	inA.Name = "txn-a"
	inB := inputFor(workload.MatMul(), 0)
	inB.Name = "txn-b"
	reqA := &Request{Input: inA, SLA: SLA{MinIPC: 0.5}}
	reqB := &Request{Input: inB, SLA: SLA{MinIPC: 0.5}}

	txA := ss.Begin()
	txB := ss.Begin()
	pA, err := txA.Propose(g, reqA)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := txB.Propose(g, reqB)
	if err != nil {
		t.Fatal(err)
	}
	// Proposed against the same snapshot, both pack the same server.
	if !reflect.DeepEqual(pA, pB) {
		t.Fatalf("same-snapshot proposals differ: %v vs %v", pA, pB)
	}
	if err := txA.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	if err := txB.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("stale transaction must conflict, got %v", err)
	}
	// Bounded deterministic retry: re-propose against the refreshed
	// state, then commit cleanly.
	if _, err := txB.Propose(g, reqB); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatalf("retried transaction must commit: %v", err)
	}
	if got := len(ss.Base().Running); got != 2 {
		t.Fatalf("want 2 running workloads, got %d", got)
	}
	// A second commit of the same transaction is refused.
	if err := txB.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
}

// poolRequests builds a deterministic request mix: BG jobs and LS
// services with SLAs, names spread over the hash space.
func poolRequests(n int) []*Request {
	reqs := make([]*Request, n)
	for i := range reqs {
		var in = inputFor(workload.MatMul(), 0)
		if i%3 == 1 {
			in = inputFor(workload.ECommerce(), 0.4)
		}
		in.Name = fmt.Sprintf("pool-%03d", i)
		reqs[i] = &Request{Input: in, SLA: SLA{MinIPC: 0.5}, SoloDurationS: 60}
	}
	return reqs
}

// resultKey flattens a PlaceResult for byte-exact comparison.
func resultKey(r PlaceResult) string {
	e := ""
	if r.Err != nil {
		e = r.Err.Error()
	}
	return fmt.Sprintf("%v|%s|%d|%d|%d|%s", r.Placement, r.Outcome, r.Retries, r.Window, r.Seq, e)
}

// TestPlacerPoolDeterminism is the tentpole contract: same seed, same
// requests — byte-identical results and final state at every
// shards × placers combination (shards=1 x placers=1 doubles as the
// serial legacy reference).
func TestPlacerPoolDeterminism(t *testing.T) {
	const servers = 64
	type cfg struct{ shards, placers int }
	var cfgs []cfg
	for _, s := range []int{1, 4, 16} {
		for _, p := range []int{1, 8} {
			cfgs = append(cfgs, cfg{s, p})
		}
	}
	var refKeys []string
	var refUsed []resources.Vector
	for _, c := range cfgs {
		ss := ShardedStateFromProfiles(spec, servers, c.shards)
		pool := NewPlacerPool(ss, c.placers, func() Scheduler {
			return NewGsight(&stubPredictor{ipc: 2})
		})
		results := pool.PlaceAll(poolRequests(48))
		keys := make([]string, len(results))
		for i, r := range results {
			keys[i] = resultKey(r)
		}
		if refKeys == nil {
			refKeys, refUsed = keys, ss.Base().Used
			continue
		}
		for i := range keys {
			if keys[i] != refKeys[i] {
				t.Fatalf("shards=%d placers=%d req %d: result %q != reference %q",
					c.shards, c.placers, i, keys[i], refKeys[i])
			}
		}
		for s := range refUsed {
			for k := range refUsed[s] {
				if ss.Base().Used[s][k] != refUsed[s][k] {
					t.Fatalf("shards=%d placers=%d server %d kind %d: Used not bit-identical",
						c.shards, c.placers, s, k)
				}
			}
		}
	}
}

// TestPlacerPoolCommitsAreConsistent cross-checks the pool's final
// state: summing every accepted placement's allocations must equal the
// state's Used exactly, and no placement may target an offline server.
func TestPlacerPoolCommitsAreConsistent(t *testing.T) {
	const servers = 96
	ss := ShardedStateFromProfiles(spec, servers, 8)
	ss.SetOffline(3, true)
	ss.SetOffline(70, true)
	pool := NewPlacerPool(ss, 4, func() Scheduler {
		return NewGsight(&stubPredictor{ipc: 2})
	})
	reqs := poolRequests(64)
	results := pool.PlaceAll(reqs)
	want := make([]resources.Vector, servers)
	placed := 0
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		placed++
		in := reqs[i].Input
		if len(r.Placement) != len(in.Profiles) {
			t.Fatalf("req %d: placement len %d != %d functions", i, len(r.Placement), len(in.Profiles))
		}
		for f := range in.Profiles {
			s := r.Placement[f]
			if s < 0 || s >= servers {
				t.Fatalf("req %d: server %d out of range", i, s)
			}
			if s == 3 || s == 70 {
				t.Fatalf("req %d placed on offline server %d", i, s)
			}
			want[s] = want[s].Add(AllocOf(&in, f))
		}
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	for s := range want {
		for k := range want[s] {
			if math.Abs(want[s][k]-ss.Base().Used[s][k]) > 1e-9 {
				t.Fatalf("server %d kind %d: recomputed %v != state %v", s, k, want[s][k], ss.Base().Used[s][k])
			}
		}
	}
	if got := len(ss.Base().Running); got != placed {
		t.Fatalf("running %d != placed %d", got, placed)
	}
}

// TestWindowProjection pins the window ladder's geometry: placements
// proposed at scale translate back to global indices inside the home
// window, and a workload committed inside a window is visible to the
// next proposal that lands there (densification packs onto it).
func TestWindowProjection(t *testing.T) {
	const servers = 256
	ss := ShardedStateFromProfiles(spec, servers, 4)
	g := NewGsight(&stubPredictor{ipc: 2})

	in := inputFor(workload.MatMul(), 0)
	in.Name = "window-probe"
	req := &Request{Input: in, SLA: SLA{MinIPC: 0.5}}
	p1, err := ss.Propose(g, req)
	if err != nil {
		t.Fatal(err)
	}
	h := int(fnv32("window-probe") % uint32(servers))
	for _, s := range p1 {
		rel := s - h
		if rel < 0 {
			rel += servers
		}
		if rel >= windowBase {
			t.Fatalf("placement %d outside home window [%d,%d)", s, h, h+windowBase)
		}
	}
	in1 := in
	in1.Placement = p1
	ss.Commit(in1, req.SLA)

	// Same home window again: the committed workload must be seen, so
	// the packer lands on the same (now active) server.
	in2 := inputFor(workload.MatMul(), 0)
	in2.Name = "window-probe" // same hash, distinct deployment
	req2 := &Request{Input: in2, SLA: SLA{MinIPC: 0.5}}
	p2, err := ss.Propose(g, req2)
	if err != nil {
		t.Fatal(err)
	}
	if p2[0] != p1[0] {
		t.Fatalf("densification lost across window projection: %v then %v", p1, p2)
	}
	if ss.ActiveServers() != 1 {
		t.Fatalf("want 1 active server, got %d", ss.ActiveServers())
	}
}

// TestShardedEpochRoundTrip covers the checkpoint surface: epochs and
// seq survive RawEpochs/RestoreEpochs, and a mismatched shard count
// degrades to the reset-all path without invalidating future commits.
func TestShardedEpochRoundTrip(t *testing.T) {
	ss := ShardedStateFromProfiles(spec, 16, 4)
	in := inputFor(workload.MatMul(), 0)
	in.Name = "ck"
	in.Placement = []int{5}
	ss.Commit(in, SLA{})
	ep, seq := ss.RawEpochs(), ss.Seq()
	if len(ep) != 4 {
		t.Fatalf("want 4 epochs, got %d", len(ep))
	}

	fresh := ShardedStateFromProfiles(spec, 16, 4)
	fresh.RestoreEpochs(ep, seq)
	if fresh.Seq() != seq {
		t.Fatalf("seq %d != %d", fresh.Seq(), seq)
	}
	for i := range ep {
		if fresh.Epoch(i) != ep[i] {
			t.Fatalf("epoch %d: %d != %d", i, fresh.Epoch(i), ep[i])
		}
	}
	// Old snapshot shape (no epochs): everything resets to seq.
	fresh.RestoreEpochs(nil, seq)
	for i := 0; i < fresh.Shards(); i++ {
		if fresh.Epoch(i) != seq {
			t.Fatalf("reset epoch %d: %d != %d", i, fresh.Epoch(i), seq)
		}
	}
	// Commits after a restore still conflict-detect correctly.
	tx := fresh.Begin()
	g := NewGsight(&stubPredictor{ipc: 2})
	if _, err := tx.Propose(g, &Request{Input: in, SLA: SLA{MinIPC: 0.5}}); err != nil {
		t.Fatal(err)
	}
	fresh.SetOffline(0, true) // touches the window
	if err := tx.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("post-restore staleness must conflict, got %v", err)
	}
}

// BenchmarkClusterCounts pins the satellite-bugfix delta: per-placement
// OnlineServers+ActiveServers on a 10k-server state, scanned vs
// counted. The scan is O(n) per call; the counted path is O(1).
func BenchmarkClusterCounts(b *testing.B) {
	const n = 10000
	run := func(b *testing.B, st *State) {
		sum := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum += st.OnlineServers() + st.ActiveServers()
		}
		if sum == 0 {
			b.Fatal("unexpected zero")
		}
	}
	b.Run("scan", func(b *testing.B) {
		st := StateFromProfiles(spec, n)
		st.SetOffline(1, true)
		run(b, st)
	})
	b.Run("counted", func(b *testing.B) {
		st := StateFromProfiles(spec, n)
		st.SetOffline(1, true)
		st.Recount()
		run(b, st)
	})
}

// BenchmarkReleaseLookup pins the Release name-lookup delta at a large
// running set: linear scan vs name→index map.
func BenchmarkReleaseLookup(b *testing.B) {
	const nServers, nRunning = 1024, 2048
	build := func(counted bool) *State {
		st := StateFromProfiles(spec, nServers)
		if counted {
			st.Recount()
		}
		for i := 0; i < nRunning; i++ {
			in := inputFor(workload.MatMul(), 0)
			in.Name = fmt.Sprintf("rel-%d", i)
			in.Placement = []int{i % nServers}
			st.Commit(in, SLA{})
		}
		return st
	}
	bench := func(b *testing.B, st *State) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Release near the tail (the scan's worst case), re-commit
			// to keep the set stable.
			nm := fmt.Sprintf("rel-%d", nRunning-1-(i%8))
			idx := st.indexOf(nm)
			if idx < 0 {
				b.Fatal("lost workload")
			}
			d := st.Running[idx]
			if !st.Release(nm) {
				b.Fatal("release failed")
			}
			st.Commit(d.Input, d.SLA)
		}
	}
	b.Run("scan", func(b *testing.B) { bench(b, build(false)) })
	b.Run("indexed", func(b *testing.B) { bench(b, build(true)) })
}
