package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gsight/internal/core"
	"gsight/internal/resources"
)

// This file implements sharded shared-state scheduling: the scale path
// that takes the paper's 8-node placement search to thousands of
// servers without giving up the repository's determinism contract.
//
// The design follows the shared-state optimistic concurrency of
// cluster schedulers like Omega and arktos' partitioned global
// scheduler: placements are proposed against a read-only snapshot
// (ClusterView) and applied through a commit step that detects
// conflicting intervening commits by epoch comparison. Three layers:
//
//   - ShardedState wraps one State with per-server epoch stamps plus
//     per-shard epoch summaries over N contiguous cells of the server
//     set. Every mutation (Commit/Release/SetOffline/SetCap) bumps the
//     epochs of the servers it touches.
//   - Txn is one optimistic placement: Propose places against a
//     bounded window of the cluster, recording the epochs it read;
//     Commit re-checks those epochs and applies the placement, or
//     fails with ErrTxnConflict so the caller retries against the
//     refreshed state.
//   - PlacerPool drains a request queue with K concurrent placer
//     workers in deterministic bulk-synchronous rounds: parallel
//     propose against the frozen state, then serial commits in
//     request-seq order. Conflicts resolve by the (epoch, request-seq)
//     tie-break — the earliest sequence number always commits clean,
//     which both guarantees progress and makes same-seed runs
//     byte-identical at any shard and worker count.
//
// Windows, not shards, bound a proposal's view: a request hashes to a
// preferred start position and is first offered a windowBase-server
// window from there, doubling ("spilling to neighbors") whenever the
// window has no feasible, SLA-clean placement, until the window covers
// the cluster. The window geometry is deliberately expressed in
// servers rather than shard multiples so decisions do not depend on
// the shard count — shards partition only the epoch bookkeeping, and
// the per-server stamps keep conflict detection exact at any
// granularity. At cluster sizes up to windowBase the first window is
// already the full view, so testbed-size runs execute the legacy
// single-state search instruction for instruction.

// windowBase is the initial placement window width. It equals the
// paper's testbed size, so clusters up to 8 servers place against the
// full view on the first attempt (the legacy-equivalence anchor).
const windowBase = 8

// maxTxnAttempts bounds how many times a request is re-proposed after
// commit-time conflicts before it is rejected with ErrNoPlacement.
const maxTxnAttempts = 8

// ErrTxnConflict reports a stale transaction: between Propose and
// Commit another commit touched a server the proposal read. The caller
// re-proposes against the refreshed state (bounded by maxTxnAttempts).
var ErrTxnConflict = errors.New("sched: transaction conflict (stale epoch)")

// ShardedState is the scalable scheduler state: one backing State
// (identical arithmetic to the legacy path — shards=1 runs are
// bit-identical to direct State use) plus epoch bookkeeping for
// optimistic concurrency. All mutating methods are serial-commit
// entry points; concurrent proposals are read-only.
type ShardedState struct {
	st      State
	shards  int
	epochs  []uint64 // per-shard epoch summary (max of member servers)
	sepochs []uint64 // per-server epoch stamps (exact conflict unit)
	seq     uint64   // commit sequence number, bumped by every mutation

	scr txnScratch // serial Propose scratch (not used by Begin/pool)
}

// NewShardedState builds a sharded state over the given capacities.
// shards is clamped to [1, len(caps)].
func NewShardedState(caps []resources.Vector, shards int) *ShardedState {
	n := len(caps)
	if shards < 1 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}
	ss := &ShardedState{
		st: State{
			Caps: append([]resources.Vector(nil), caps...),
			Used: make([]resources.Vector, n),
		},
		shards:  shards,
		epochs:  make([]uint64, shards),
		sepochs: make([]uint64, n),
	}
	ss.st.Recount()
	return ss
}

// ShardedStateFromProfiles is the profile-spec convenience mirroring
// StateFromProfiles.
func ShardedStateFromProfiles(spec resources.ServerSpec, n, shards int) *ShardedState {
	caps := make([]resources.Vector, n)
	for i := range caps {
		caps[i] = spec.Capacity
	}
	return NewShardedState(caps, shards)
}

// Base exposes the backing State for read access and for the recovery
// paths that patch state in place (checkpoint restore, post-crash
// refresh). After mutating Base()'s fields directly, call Recount —
// both the cached counts and the epoch stamps must be refreshed.
func (ss *ShardedState) Base() *State { return &ss.st }

// Shards returns the shard count.
func (ss *ShardedState) Shards() int { return ss.shards }

// ShardOf maps a server index to its shard (contiguous balanced
// cells).
func (ss *ShardedState) ShardOf(s int) int { return s * ss.shards / len(ss.st.Caps) }

// Seq returns the commit sequence number (serialized in checkpoints).
func (ss *ShardedState) Seq() uint64 { return ss.seq }

// Epoch returns shard sh's current epoch.
func (ss *ShardedState) Epoch(sh int) uint64 { return ss.epochs[sh] }

// RawEpochs copies out the per-shard epochs for serialization.
func (ss *ShardedState) RawEpochs() []uint64 {
	return append([]uint64(nil), ss.epochs...)
}

// RestoreEpochs reinstates serialized epoch state after a checkpoint
// restore. A nil or mismatched epochs slice (older snapshot, different
// shard flag) degrades safely: every epoch is reset to seq, which
// invalidates nothing because no proposal survives a restore.
func (ss *ShardedState) RestoreEpochs(epochs []uint64, seq uint64) {
	ss.seq = seq
	if len(epochs) == ss.shards {
		copy(ss.epochs, epochs)
	} else {
		for i := range ss.epochs {
			ss.epochs[i] = seq
		}
	}
	for i := range ss.sepochs {
		ss.sepochs[i] = seq
	}
}

// Recount refreshes the cached counts after direct surgery on Base()
// and advances every epoch (the surgery invalidates any outstanding
// proposal).
func (ss *ShardedState) Recount() {
	ss.st.Recount()
	ss.seq++
	for i := range ss.epochs {
		ss.epochs[i] = ss.seq
	}
	for i := range ss.sepochs {
		ss.sepochs[i] = ss.seq
	}
}

// touch stamps server s with the current sequence number.
func (ss *ShardedState) touch(s int) {
	ss.sepochs[s] = ss.seq
	ss.epochs[ss.ShardOf(s)] = ss.seq
}

// Commit applies a placement — legacy State.Commit plus epoch stamps
// on the touched servers.
func (ss *ShardedState) Commit(in core.WorkloadInput, sla SLA) {
	ss.seq++
	for f := range in.Profiles {
		ss.touch(in.Placement[f])
	}
	ss.st.Commit(in, sla)
}

// Release removes the named workload, stamping its servers.
func (ss *ShardedState) Release(name string) bool {
	i := ss.st.indexOf(name)
	if i < 0 {
		return false
	}
	ss.seq++
	d := &ss.st.Running[i]
	for f := range d.Input.Profiles {
		ss.touch(d.Input.Placement[f])
	}
	return ss.st.Release(name)
}

// SetOffline cordons or restores server s, stamping it.
func (ss *ShardedState) SetOffline(s int, down bool) {
	ss.seq++
	ss.touch(s)
	ss.st.SetOffline(s, down)
}

// SetCap repoints server s's capacity (fault-injection degradation),
// stamping it.
func (ss *ShardedState) SetCap(s int, v resources.Vector) {
	ss.seq++
	ss.touch(s)
	ss.st.Caps[s] = v
}

// ClusterView delegation: schedulers handed a *ShardedState read the
// backing state directly (viewState short-circuits the interface).

func (ss *ShardedState) NumServers() int                  { return ss.st.NumServers() }
func (ss *ShardedState) Capacity(s int) resources.Vector  { return ss.st.Caps[s] }
func (ss *ShardedState) Allocated(s int) resources.Vector { return ss.st.Used[s] }
func (ss *ShardedState) Free(s int) resources.Vector      { return ss.st.Free(s) }
func (ss *ShardedState) Online(s int) bool                { return ss.st.Online(s) }
func (ss *ShardedState) OnlineServers() int               { return ss.st.OnlineServers() }
func (ss *ShardedState) ActiveServers() int               { return ss.st.ActiveServers() }
func (ss *ShardedState) NumRunning() int                  { return len(ss.st.Running) }
func (ss *ShardedState) RunningAt(i int) Deployed         { return ss.st.Running[i] }
func (ss *ShardedState) sealed()                          {}

var (
	_ ClusterView = (*State)(nil)
	_ ClusterView = (*ShardedState)(nil)
)

// indexOf returns the first index of name in Running, -1 if absent —
// the map lookup when counted, the legacy scan otherwise.
func (st *State) indexOf(name string) int {
	if st.counted {
		if i, ok := st.nameIdx[name]; ok {
			return i
		}
		return -1
	}
	for i := range st.Running {
		if st.Running[i].Input.Name == name {
			return i
		}
	}
	return -1
}

// txnScratch is the reusable workspace of one proposal ladder: the
// projected window sub-state, the placement-translation arena and the
// outcome detail attached to requests whose caller passed none.
type txnScratch struct {
	sub     State
	offline []bool
	arena   []int
	detail  PlacementDetail
}

// Txn is one optimistic placement transaction. Propose records what
// was read (window plus epoch stamps); Commit validates and applies.
// A Txn is single-use per Propose: re-proposing after a conflict
// overwrites it in place.
type Txn struct {
	ss  *ShardedState
	req *Request
	scr *txnScratch // standalone transactions own scratch; pool txns borrow the worker's

	start, width int      // accepted window ([0,n) when full view)
	stamps       []uint64 // per-server epochs read, window order
	shardBase    int      // shard of start
	shardStamps  []uint64 // per-shard epochs read, cell order from shardBase

	placement []int
	outcome   string
	err       error
	committed bool
}

// Begin opens a standalone transaction (tests, external drivers). The
// PlacerPool manages its own transactions and scratch.
func (ss *ShardedState) Begin() *Txn {
	return &Txn{ss: ss, scr: &txnScratch{}}
}

// Propose places req through s against the current state, recording
// the epochs read. It returns the proposed global placement; Commit
// applies it.
func (t *Txn) Propose(s Scheduler, req *Request) ([]int, error) {
	t.ss.propose(s, req, t.scr, t, true)
	return t.placement, t.err
}

// Commit validates the proposal's epoch stamps and applies the
// placement. ErrTxnConflict means another commit touched the window
// since Propose — re-propose and retry (bounded by the caller).
func (t *Txn) Commit() error {
	if t.err != nil {
		return t.err
	}
	if t.committed {
		return fmt.Errorf("sched: transaction already committed")
	}
	if !t.ss.validate(t) {
		return ErrTxnConflict
	}
	in := t.req.Input
	in.Placement = t.placement
	t.ss.Commit(in, t.req.SLA)
	t.committed = true
	return nil
}

// Propose is the serial placement entry point the platform runner
// uses: the window ladder without transaction stamps (the caller
// commits directly; with no concurrent committers there is nothing to
// validate). At testbed sizes this is exactly a legacy s.Place against
// the backing state, and it adds no allocations to that path.
func (ss *ShardedState) Propose(s Scheduler, req *Request) ([]int, error) {
	var t Txn
	ss.propose(s, req, &ss.scr, &t, false)
	return t.placement, t.err
}

// fnv32 is FNV-1a — the request-to-window hash. It depends only on
// the workload name, so a request targets the same home window at any
// shard or worker count.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// propose runs the window ladder for one request and fills t with the
// outcome. capture records epoch stamps for Commit-time validation
// (skipped on the serial path).
//
// Ladder policy: start at the request's home window; widen on
// ErrNoPlacement (nothing fits / every feasible spread violates an
// SLA within the window) and on the "fallback" outcome (the window
// accepted only a last-resort full-spread — a wider window may still
// find an SLA-clean placement). "placed" and "degraded" accept
// immediately; non-placement errors (untrained predictor and the
// like) bubble to the caller, whose degraded-mode policy is not the
// ladder's business. Once the window covers the cluster the decision
// is final either way.
func (ss *ShardedState) propose(s Scheduler, req *Request, scr *txnScratch, t *Txn, capture bool) {
	t.ss = ss
	t.req = req
	t.placement = nil
	t.outcome = ""
	t.err = nil
	t.committed = false
	n := ss.st.NumServers()
	if n == 0 {
		t.err = fmt.Errorf("sched: empty cluster")
		return
	}
	// Outcome inspection needs a detail record; lend the scratch one to
	// callers that passed none and restore their nil afterwards.
	callerDetail := req.Detail
	if callerDetail == nil {
		scr.detail = PlacementDetail{}
		req.Detail = &scr.detail
	}
	defer func() { req.Detail = callerDetail }()

	h := int(fnv32(req.Input.Name) % uint32(n))
	for w := windowBase; ; w *= 2 {
		if w >= n {
			// Full view: place directly against the backing state.
			t.start, t.width = 0, n
			out, err := s.Place(&ss.st, req)
			t.placement, t.err, t.outcome = out, err, req.Detail.Outcome
			if capture && t.err == nil {
				ss.capture(t)
			}
			return
		}
		t.start, t.width = h, w
		scr.project(ss, h, w)
		out, err := s.Place(&scr.sub, req)
		if err != nil {
			if errors.Is(err, ErrNoPlacement) {
				continue // spill to neighbors: double the window
			}
			t.err = err
			t.outcome = req.Detail.Outcome
			return
		}
		if req.Detail.Outcome == "fallback" {
			continue // window-local last resort; widen before settling
		}
		// Accept: translate window-local indices back to global.
		for f := range out {
			g := h + out[f]
			if g >= n {
				g -= n
			}
			out[f] = g
		}
		t.placement, t.outcome = out, req.Detail.Outcome
		if capture {
			ss.capture(t)
		}
		return
	}
}

// project builds the window sub-state [h, h+w) mod n into scr.sub.
// Capacities, usage and the online mask copy per server; running
// workloads project only when every function lives inside the window
// (their placements translate to window-local indices via the arena).
// Workloads that span the window edge still weigh in through the Used
// vectors of their in-window servers — the same semantics the zone
// hierarchy uses.
func (scr *txnScratch) project(ss *ShardedState, h, w int) {
	n := ss.st.NumServers()
	sub := &scr.sub
	sub.Caps = resizeVecs(sub.Caps, w)
	sub.Used = resizeVecs(sub.Used, w)
	if cap(scr.offline) < w {
		scr.offline = make([]bool, w)
	}
	sub.Offline = scr.offline[:w]
	sub.Running = sub.Running[:0]
	sub.counted = false
	scr.arena = scr.arena[:0]
	hasOffline := ss.st.Offline != nil
	for i := 0; i < w; i++ {
		g := h + i
		if g >= n {
			g -= n
		}
		sub.Caps[i] = ss.st.Caps[g]
		sub.Used[i] = ss.st.Used[g]
		sub.Offline[i] = hasOffline && ss.st.Offline[g]
	}
	for di := range ss.st.Running {
		d := &ss.st.Running[di]
		inside := true
		for f := range d.Input.Profiles {
			rel := d.Input.Placement[f] - h
			if rel < 0 {
				rel += n
			}
			if rel >= w {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		base := len(scr.arena)
		for f := range d.Input.Profiles {
			rel := d.Input.Placement[f] - h
			if rel < 0 {
				rel += n
			}
			scr.arena = append(scr.arena, rel)
		}
		in := d.Input
		in.Placement = scr.arena[base:len(scr.arena):len(scr.arena)]
		sub.Running = append(sub.Running, Deployed{Input: in, SLA: d.SLA})
	}
}

func resizeUints(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// cellEnd returns the first server index of shard sh+1 (== n for the
// last shard).
func (ss *ShardedState) cellEnd(sh int) int {
	n := len(ss.st.Caps)
	return ((sh+1)*n + ss.shards - 1) / ss.shards
}

// capture records the epoch stamps of every server (and shard cell)
// the accepted window read.
func (ss *ShardedState) capture(t *Txn) {
	n := len(ss.st.Caps)
	t.stamps = resizeUints(t.stamps, t.width)
	t.shardBase = ss.ShardOf(t.start % n)
	t.shardStamps = t.shardStamps[:0]
	i := 0
	for i < t.width {
		g := t.start + i
		if g >= n {
			g -= n
		}
		sh := ss.ShardOf(g)
		rel := sh - t.shardBase
		if rel < 0 {
			rel += ss.shards
		}
		if rel == len(t.shardStamps) {
			t.shardStamps = append(t.shardStamps, ss.epochs[sh])
		}
		span := ss.cellEnd(sh) - g
		if span > t.width-i {
			span = t.width - i
		}
		for k := 0; k < span; k++ {
			gg := g + k // within one cell, no wrap
			t.stamps[i+k] = ss.sepochs[gg]
		}
		i += span
	}
}

// validate re-checks a proposal's stamps against the current epochs.
// Per-shard epochs are the fast filter — an untouched cell is skipped
// in one comparison — and the per-server stamps decide exactly, so
// the verdict is independent of the shard count: a conflict is
// declared if and only if a server the proposal read was touched.
func (ss *ShardedState) validate(t *Txn) bool {
	n := len(ss.st.Caps)
	i := 0
	for i < t.width {
		g := t.start + i
		if g >= n {
			g -= n
		}
		sh := ss.ShardOf(g)
		rel := sh - t.shardBase
		if rel < 0 {
			rel += ss.shards
		}
		span := ss.cellEnd(sh) - g
		if span > t.width-i {
			span = t.width - i
		}
		if ss.epochs[sh] != t.shardStamps[rel] {
			for k := 0; k < span; k++ {
				if ss.sepochs[g+k] != t.stamps[i+k] {
					return false
				}
			}
		}
		i += span
	}
	return true
}

// PlaceResult is one request's outcome from a PlacerPool drain.
type PlaceResult struct {
	// Placement holds global server indices; nil when Err is set.
	Placement []int
	Err       error
	// Outcome mirrors PlacementDetail.Outcome for the final attempt.
	Outcome string
	// Retries counts commit-time conflicts before the final verdict.
	Retries int
	// Window is the accepted view width (NumServers for a full view).
	Window int
	// Seq is the commit sequence number of the applied placement.
	Seq uint64
}

// PlacerPool drains placement queues with K concurrent workers over
// one ShardedState. Each worker owns a scheduler instance (from the
// factory — scheduler scratch is not goroutine-safe, predictors may
// be shared) and a proposal scratch.
type PlacerPool struct {
	ss      *ShardedState
	workers int
	scheds  []Scheduler
	scratch []txnScratch
}

// NewPlacerPool builds a pool of `workers` placers (clamped to >= 1).
// factory must return a fresh Scheduler per call.
func NewPlacerPool(ss *ShardedState, workers int, factory func() Scheduler) *PlacerPool {
	if workers < 1 {
		workers = 1
	}
	p := &PlacerPool{
		ss:      ss,
		workers: workers,
		scheds:  make([]Scheduler, workers),
		scratch: make([]txnScratch, workers),
	}
	for i := range p.scheds {
		p.scheds[i] = factory()
	}
	return p
}

// Workers returns the worker count.
func (p *PlacerPool) Workers() int { return p.workers }

// PlaceAll drains the request queue: placements are proposed in
// parallel and committed serially, and the returned results line up
// with reqs. The run is deterministic at any worker count:
//
//   - Rounds are bulk-synchronous. During a round's propose phase the
//     state is frozen, so every proposal is a pure function of
//     (round-start state, request) — which worker computes it cannot
//     matter.
//   - Commits apply in ascending request order (the request-seq half
//     of the (epoch, request-seq) tie-break). A proposal whose stamps
//     went stale — an earlier request touched its window this round —
//     re-enters the next round; after maxTxnAttempts conflicts it is
//     rejected with ErrNoPlacement.
//   - The earliest pending request always validates against the
//     round-start state it was proposed on, so every round retires at
//     least one request: the drain terminates without timeouts.
//
// Accepted placements are committed into the pool's ShardedState
// before PlaceAll returns; rejections and scheduler errors are final.
func (p *PlacerPool) PlaceAll(reqs []*Request) []PlaceResult {
	n := len(reqs)
	results := make([]PlaceResult, n)
	if n == 0 {
		return results
	}
	txns := make([]Txn, n)
	attempts := make([]int, n)
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		// Propose phase: workers drain the pending queue through an
		// atomic cursor. Assignment order is irrelevant (proposals are
		// pure reads of the frozen state into per-request slots).
		nw := p.workers
		if nw > len(pending) {
			nw = len(pending)
		}
		if nw == 1 {
			for _, seq := range pending {
				p.ss.propose(p.scheds[0], reqs[seq], &p.scratch[0], &txns[seq], true)
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(pending) {
							return
						}
						seq := pending[i]
						p.ss.propose(p.scheds[w], reqs[seq], &p.scratch[w], &txns[seq], true)
					}
				}(w)
			}
			wg.Wait()
		}
		// Commit phase: serial, ascending request seq.
		keep := pending[:0]
		for _, seq := range pending {
			t := &txns[seq]
			if t.err == nil && !p.ss.validate(t) {
				attempts[seq]++
				if attempts[seq] >= maxTxnAttempts {
					results[seq] = PlaceResult{
						Err:     fmt.Errorf("%w: conflict budget exhausted after %d attempts", ErrNoPlacement, attempts[seq]),
						Outcome: "rejected",
						Retries: attempts[seq],
						Window:  t.width,
					}
				} else {
					keep = append(keep, seq)
				}
				continue
			}
			if t.err != nil {
				// Deterministic failure against this round's state;
				// commits only add load, so it cannot succeed later.
				results[seq] = PlaceResult{
					Err:     t.err,
					Outcome: t.outcome,
					Retries: attempts[seq],
					Window:  t.width,
				}
				continue
			}
			in := reqs[seq].Input
			in.Placement = t.placement
			p.ss.Commit(in, reqs[seq].SLA)
			results[seq] = PlaceResult{
				Placement: t.placement,
				Outcome:   t.outcome,
				Retries:   attempts[seq],
				Window:    t.width,
				Seq:       p.ss.seq,
			}
		}
		pending = keep
	}
	return results
}
