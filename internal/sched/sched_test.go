package sched

import (
	"testing"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

var spec = resources.DefaultServerSpec("test")

func inputFor(w *workload.Workload, qpsFrac float64) core.WorkloadInput {
	ps := profile.WorkloadProfiles(w, spec, nil)
	in := core.WorkloadInput{
		Name:      w.Name,
		Class:     w.Class,
		Profiles:  ps,
		Placement: make([]int, len(ps)),
		QPSFrac:   qpsFrac,
	}
	if w.Class == workload.LS {
		in.Replicas = make([]int, len(ps))
		for f := range in.Replicas {
			in.Replicas[f] = perfmodel.LSReplicasFor(w, f, w.MaxQPS)
		}
	} else {
		in.LifetimeS = w.SoloDurationS
	}
	return in
}

// stubPredictor returns a fixed IPC, letting tests force SLA outcomes.
type stubPredictor struct{ ipc float64 }

func (s *stubPredictor) TrainObservations(core.QoSKind, []core.Observation) error { return nil }
func (s *stubPredictor) Predict(core.QoSKind, int, []core.WorkloadInput) (float64, error) {
	return s.ipc, nil
}
func (s *stubPredictor) Observe(core.QoSKind, int, []core.WorkloadInput, float64) error { return nil }
func (s *stubPredictor) Flush(core.QoSKind) error                                       { return nil }
func (s *stubPredictor) Name() string                                                   { return "stub" }

func TestStateBookkeeping(t *testing.T) {
	st := StateFromProfiles(spec, 4)
	if st.NumServers() != 4 || st.ActiveServers() != 0 {
		t.Fatal("fresh state wrong")
	}
	in := inputFor(workload.MatMul(), 0)
	in.Placement = []int{2}
	st.Commit(in, SLA{})
	if st.ActiveServers() != 1 {
		t.Fatal("commit did not activate server")
	}
	if st.Free(2)[resources.CPU] >= spec.Capacity[resources.CPU] {
		t.Fatal("commit did not consume CPU")
	}
	if !st.Release("matmul") {
		t.Fatal("release failed")
	}
	if st.ActiveServers() != 0 {
		t.Fatal("release did not free server")
	}
	if st.Release("matmul") {
		t.Fatal("double release succeeded")
	}
}

func TestGsightPacksWhenSLAAllows(t *testing.T) {
	st := StateFromProfiles(spec, 4)
	// Pre-load server 0 so it is the busiest.
	seed := inputFor(workload.MatMul(), 0)
	seed.Placement = []int{0}
	st.Commit(seed, SLA{})

	g := NewGsight(&stubPredictor{ipc: 99}) // SLA always satisfied
	req := &Request{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 1}}
	placement, err := g.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range placement {
		if s != 0 {
			t.Fatalf("full-overlap placement should pack onto busy server 0, got %v", placement)
		}
	}
}

func TestGsightSpreadsWhenSLAViolated(t *testing.T) {
	st := StateFromProfiles(spec, 4)
	seed := inputFor(workload.MatMul(), 0)
	seed.Placement = []int{0}
	st.Commit(seed, SLA{})

	// Predictor always fails the SLA: the binary search must fall all
	// the way to the full-spread fallback without erroring.
	g := NewGsight(&stubPredictor{ipc: 0.1})
	req := &Request{Input: inputFor(workload.ECommerce(), 0.5), SLA: SLA{MinIPC: 1}}
	placement, err := g.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	servers := map[int]bool{}
	for _, s := range placement {
		servers[s] = true
	}
	if len(servers) < 2 {
		t.Fatalf("expected spread placement, got %v", placement)
	}
}

func TestGsightChecksRunningWorkloads(t *testing.T) {
	// A predictor that reports bad QoS only for running workloads
	// (target > 0 after candidate insertion at slot 0).
	p := &targetAware{}
	st := StateFromProfiles(spec, 4)
	running := inputFor(workload.SocialNetwork(), 0.5)
	for f := range running.Placement {
		running.Placement[f] = f % 4
	}
	st.Commit(running, SLA{MinIPC: 1.0})

	g := NewGsight(p)
	req := &Request{Input: inputFor(workload.MatMul(), 0), SLA: SLA{}}
	if _, err := g.Place(st, req); err != nil {
		t.Fatal(err)
	}
	if !p.sawRunningCheck {
		t.Fatal("scheduler never checked the running workload's SLA")
	}
}

type targetAware struct{ sawRunningCheck bool }

func (s *targetAware) TrainObservations(core.QoSKind, []core.Observation) error { return nil }
func (s *targetAware) Predict(_ core.QoSKind, target int, _ []core.WorkloadInput) (float64, error) {
	if target > 0 {
		s.sawRunningCheck = true
	}
	return 99, nil
}
func (s *targetAware) Observe(core.QoSKind, int, []core.WorkloadInput, float64) error { return nil }
func (s *targetAware) Flush(core.QoSKind) error                                       { return nil }
func (s *targetAware) Name() string                                                   { return "targetAware" }

func TestBestFitPicksTightestServer(t *testing.T) {
	st := StateFromProfiles(spec, 3)
	// Server 1 is the most loaded (least headroom).
	a := inputFor(workload.MatMul(), 0)
	a.Name = "a"
	a.Placement = []int{1}
	st.Commit(a, SLA{})
	b := inputFor(workload.DD(), 0)
	b.Name = "b"
	b.Placement = []int{2}
	st.Commit(b, SLA{})

	bf := NewBestFit(nil)
	req := &Request{Input: inputFor(workload.FloatOp(), 0)}
	placement, err := bf.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] != 1 {
		t.Fatalf("best fit chose server %d, want 1 (least headroom)", placement[0])
	}
}

func TestWorstFitPicksEmptiestServer(t *testing.T) {
	st := StateFromProfiles(spec, 3)
	a := inputFor(workload.MatMul(), 0)
	a.Placement = []int{0}
	st.Commit(a, SLA{})

	wf := NewWorstFit()
	req := &Request{Input: inputFor(workload.DD(), 0)}
	placement, err := wf.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] == 0 {
		t.Fatalf("worst fit chose the busy server")
	}
}

func TestMemoryIsNeverOversubscribed(t *testing.T) {
	smallSpec := spec
	smallSpec.Capacity[resources.Memory] = 0.4 // 400 MB per server
	st := StateFromProfiles(smallSpec, 2)
	big := inputFor(workload.VideoProcessing(), 0) // 6 GB demand
	for _, s := range []Scheduler{NewGsight(&stubPredictor{ipc: 9}), NewBestFit(nil), NewWorstFit()} {
		if _, err := s.Place(st, &Request{Input: big}); err == nil {
			t.Errorf("%s oversubscribed memory", s.Name())
		}
	}
}

func TestCurveSLATransform(t *testing.T) {
	// Synthetic knee: latency flat at 50ms above ipc 1.0, exploding
	// below.
	var pts []CurvePoint
	for i := 0; i < 50; i++ {
		ipc := 0.5 + 0.02*float64(i)
		p99 := 50.0
		if ipc < 1.0 {
			p99 = 50 + 4000*(1.0-ipc)
		}
		pts = append(pts, CurvePoint{IPC: ipc, P99Ms: p99})
	}
	c := NewCurve(pts)
	minIPC, ok := c.MinIPCFor(100)
	if !ok {
		t.Fatal("SLA should be satisfiable")
	}
	if minIPC < 0.9 || minIPC > 1.1 {
		t.Fatalf("MinIPCFor(100ms) = %v, want ~1.0", minIPC)
	}
	if _, ok := c.MinIPCFor(1); ok {
		t.Fatal("1ms SLA should be unsatisfiable")
	}
	if got := c.P99At(1.2); got < 40 || got > 60 {
		t.Fatalf("P99At(1.2) = %v, want ~50", got)
	}
	empty := NewCurve(nil)
	if _, ok := empty.MinIPCFor(10); ok {
		t.Fatal("empty curve cannot satisfy")
	}
}

func TestBuildCurveShape(t *testing.T) {
	m := perfmodel.New(resources.DefaultTestbed())
	c := BuildCurve(m, workload.SocialNetwork(), 60, 5)
	pts := c.Points()
	if len(pts) < 50 {
		t.Fatalf("curve too sparse: %d points", len(pts))
	}
	// The knee property: mean latency at the lowest IPC quartile must
	// exceed that at the highest quartile.
	q := len(pts) / 4
	var lowSum, highSum float64
	for i := 0; i < q; i++ {
		lowSum += pts[i].P99Ms
		highSum += pts[len(pts)-1-i].P99Ms
	}
	if lowSum <= highSum {
		t.Fatalf("no knee: low-IPC latency %v <= high-IPC %v", lowSum/float64(q), highSum/float64(q))
	}
	// SLA transformation yields a usable floor.
	if _, ok := c.MinIPCFor(workload.SocialNetwork().SLAp99Ms); !ok {
		t.Fatal("SLA transform found no feasible IPC floor")
	}
}
