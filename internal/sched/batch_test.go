package sched

import (
	"testing"

	"gsight/internal/core"
	"gsight/internal/ml"
	"gsight/internal/perfmodel"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/workload"
)

// noBatch hides a predictor's batch fast path behind the plain
// interface, forcing the scheduler down the sequential check loop.
type noBatch struct{ core.QoSPredictor }

func trainedSchedPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	m := perfmodel.New(resources.DefaultTestbed())
	scenario.FastConfig(m)
	g := scenario.NewGenerator(m, 42)
	var ipcObs, jctObs []core.Observation
	for i := 0; i < 30; i++ {
		sc := g.Colocation(core.LSSC, 2)
		samples, err := g.Label(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			o := core.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
			switch s.Kind {
			case core.IPCQoS:
				ipcObs = append(ipcObs, o)
			case core.JCTQoS:
				jctObs = append(jctObs, o)
			}
		}
	}
	p := core.NewPredictor(core.Config{
		Seed: 1,
		Factory: func(seed uint64) ml.Incremental {
			return ml.NewForest(ml.ForestConfig{Trees: 4, Seed: seed, Tree: ml.TreeConfig{MTry: 48}})
		},
	})
	if err := p.TrainObservations(core.IPCQoS, ipcObs); err != nil {
		t.Fatal(err)
	}
	if err := p.TrainObservations(core.JCTQoS, jctObs); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGsightBatchMatchesSequential drives two schedulers — one on the
// predictor's batched check path, one forced sequential — through the
// same request sequence. Batched predictions are bit-identical to
// single ones, so every placement decision must agree.
func TestGsightBatchMatchesSequential(t *testing.T) {
	p := trainedSchedPredictor(t)
	reqs := []*Request{
		{Input: inputFor(workload.SocialNetwork(), 0.5), SLA: SLA{MinIPC: 0.4}},
		{Input: inputFor(workload.MatMul(), 0), SLA: SLA{MaxJCTFactor: 3}, SoloDurationS: 60},
		{Input: inputFor(workload.ECommerce(), 0.4), SLA: SLA{MinIPC: 0.4}},
		{Input: inputFor(workload.DD(), 0), SLA: SLA{MinIPC: 0.3, MaxJCTFactor: 4}, SoloDurationS: 45},
		{Input: inputFor(workload.MLServing(), 0.3), SLA: SLA{MinIPC: 0.4}},
	}
	run := func(pred core.QoSPredictor) [][]int {
		st := StateFromProfiles(spec, 8)
		g := NewGsight(pred)
		var placements [][]int
		for _, req := range reqs {
			placement, err := g.Place(st, req)
			if err != nil {
				t.Fatal(err)
			}
			in := req.Input
			in.Placement = placement
			st.Commit(in, req.SLA)
			placements = append(placements, placement)
		}
		return placements
	}
	batched := run(p)
	sequential := run(noBatch{p})
	for i := range reqs {
		if len(batched[i]) != len(sequential[i]) {
			t.Fatalf("request %d: placement lengths differ", i)
		}
		for f := range batched[i] {
			if batched[i][f] != sequential[i][f] {
				t.Fatalf("request %d fn %d: batched %v vs sequential %v",
					i, f, batched[i], sequential[i])
			}
		}
	}
}

// TestGsightPlaceDeterministic re-runs the same placement on one
// scheduler instance: scratch reuse must not leak state between calls,
// and returned placements must be freshly owned (not aliased scratch).
func TestGsightPlaceDeterministic(t *testing.T) {
	p := trainedSchedPredictor(t)
	g := NewGsight(p)
	st := StateFromProfiles(spec, 8)
	seed := inputFor(workload.MatMul(), 0)
	seed.Placement = []int{0}
	st.Commit(seed, SLA{MaxJCTFactor: 5})
	req := &Request{Input: inputFor(workload.SocialNetwork(), 0.5), SLA: SLA{MinIPC: 0.4}}
	first, err := g.Place(st, req)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]int(nil), first...)
	for round := 0; round < 5; round++ {
		got, err := g.Place(st, req)
		if err != nil {
			t.Fatal(err)
		}
		for f := range snapshot {
			if got[f] != snapshot[f] {
				t.Fatalf("round %d: placement drifted: %v vs %v", round, got, snapshot)
			}
		}
		// The earlier result must be unaffected by later Place calls.
		for f := range snapshot {
			if first[f] != snapshot[f] {
				t.Fatalf("round %d: prior placement mutated: %v vs %v", round, first, snapshot)
			}
		}
	}
}
