// Package sortx holds the repository's pattern-defeating quicksort
// transcriptions. The implementation is the standard library's pdqsort
// (sort.Slice / zsortfunc.go, itself after Orson Peters' pdqsort),
// written out for the two concrete shapes the hot paths need:
//
//   - Pairs sorts two parallel []float64 arrays by the first — the
//     split-search sort of the forest-training kernel (moved here from
//     internal/ml so the schedulers can share the port).
//   - Ints sorts an []int under a caller comparator — the candidate
//     ordering sort of the schedulers once server counts reach the
//     thousands and insertion sort's O(n²) shows.
//
// Both transcriptions are deliberately faithful to the standard
// library — same pivot selection, same pattern breaking, same
// insertion/heap fallbacks — so they perform the exact permutation
// sort.Slice with the equivalent comparator would, without the
// reflect-based swapper and its per-element allocations. pdqsort is
// not stable: callers that need a deterministic permutation on ties
// (every scheduler does — float accumulation order depends on it)
// must pass a comparator that is a total order, e.g. by breaking ties
// on the element value itself.
package sortx

import "math/bits"

// Pairs sorts the parallel arrays (v, t) by v, ascending. Within runs
// of equal v values the t order matches what sort.Slice with a
// `v[a] < v[b]` comparator would produce, so floating-point prefix
// sums over t are bit-identical to a sort.Slice-based caller.
func Pairs(v, t []float64) {
	n := len(v)
	pdqPairs(v, t, 0, n, bits.Len(uint(n)))
}

// Ints sorts a ascending under less, which must be a strict weak
// ordering over the element values. For a deterministic permutation
// (pdqsort is unstable) less must induce a total order — break ties
// on the values themselves.
func Ints(a []int, less func(x, y int) bool) {
	n := len(a)
	pdqInts(a, less, 0, n, bits.Len(uint(n)))
}

// xorshift is the deterministic generator pdqsort uses to break
// adversarial patterns (seeded from the slice length, as in the
// standard library).
type xorshift uint64

func (r *xorshift) next() uint64 {
	*r ^= *r << 13
	*r ^= *r >> 7
	*r ^= *r << 17
	return uint64(*r)
}

func nextPowerOfTwo(length int) uint {
	return 1 << uint(bits.Len(uint(length)))
}

type sortHint int

const (
	hintUnknown sortHint = iota
	hintIncreasing
	hintDecreasing
)

// ---------------------------------------------------------------------
// Pairs shape: parallel (v, t []float64), ordered by v.
// ---------------------------------------------------------------------

// pdqPairs sorts (v,t)[a:b]; limit is the number of allowed bad pivots
// before falling back to heapsort.
func pdqPairs(v, t []float64, a, b, limit int) {
	const maxInsertion = 12

	var (
		wasBalanced    = true // whether the last partitioning was reasonably balanced
		wasPartitioned = true // whether the slice was already partitioned
	)

	for {
		length := b - a

		if length <= maxInsertion {
			insertionSortPairs(v, t, a, b)
			return
		}

		// Fall back to heapsort if too many bad choices were made.
		if limit == 0 {
			heapSortPairs(v, t, a, b)
			return
		}

		// If the last partitioning was imbalanced, we need to break patterns.
		if !wasBalanced {
			breakPatternsPairs(v, t, a, b)
			limit--
		}

		pivot, hint := choosePivotPairs(v, a, b)
		if hint == hintDecreasing {
			reverseRangePairs(v, t, a, b)
			// The chosen pivot was pivot-a elements after the start of the array.
			// After reversing it is pivot-a elements before the end of the array.
			pivot = (b - 1) - (pivot - a)
			hint = hintIncreasing
		}

		// The slice is likely already sorted.
		if wasBalanced && wasPartitioned && hint == hintIncreasing {
			if partialInsertionSortPairs(v, t, a, b) {
				return
			}
		}

		// Probably the slice contains many duplicate elements, partition the
		// slice into elements equal to and elements greater than the pivot.
		if a > 0 && !(v[a-1] < v[pivot]) {
			a = partitionEqualPairs(v, t, a, b, pivot)
			continue
		}

		mid, alreadyPartitioned := partitionPairs(v, t, a, b, pivot)
		wasPartitioned = alreadyPartitioned

		leftLen, rightLen := mid-a, b-mid
		balanceThreshold := length / 8
		if leftLen < rightLen {
			wasBalanced = leftLen >= balanceThreshold
			pdqPairs(v, t, a, mid, limit)
			a = mid + 1
		} else {
			wasBalanced = rightLen >= balanceThreshold
			pdqPairs(v, t, mid+1, b, limit)
			b = mid
		}
	}
}

func insertionSortPairs(v, t []float64, a, b int) {
	for i := a + 1; i < b; i++ {
		for j := i; j > a && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
			t[j], t[j-1] = t[j-1], t[j]
		}
	}
}

// siftDownPairs implements the heap property on (v,t)[lo:hi].
// first is an offset into the array where the root of the heap lies.
func siftDownPairs(v, t []float64, lo, hi, first int) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			break
		}
		if child+1 < hi && v[first+child] < v[first+child+1] {
			child++
		}
		if !(v[first+root] < v[first+child]) {
			return
		}
		v[first+root], v[first+child] = v[first+child], v[first+root]
		t[first+root], t[first+child] = t[first+child], t[first+root]
		root = child
	}
}

func heapSortPairs(v, t []float64, a, b int) {
	first := a
	lo := 0
	hi := b - a

	// Build heap with greatest element at top.
	for i := (hi - 1) / 2; i >= 0; i-- {
		siftDownPairs(v, t, i, hi, first)
	}

	// Pop elements, largest first, into end of data.
	for i := hi - 1; i >= 0; i-- {
		v[first], v[first+i] = v[first+i], v[first]
		t[first], t[first+i] = t[first+i], t[first]
		siftDownPairs(v, t, lo, i, first)
	}
}

// partitionPairs does one quicksort partition.
// Let p = v[pivot]. Moves elements in (v,t)[a:b] around, so that
// v[i] < p and v[j] >= p for i < newpivot and j > newpivot.
// On return, v[newpivot] = p.
func partitionPairs(v, t []float64, a, b, pivot int) (newpivot int, alreadyPartitioned bool) {
	v[a], v[pivot] = v[pivot], v[a]
	t[a], t[pivot] = t[pivot], t[a]
	i, j := a+1, b-1 // i and j are inclusive of the elements remaining to be partitioned

	for i <= j && v[i] < v[a] {
		i++
	}
	for i <= j && !(v[j] < v[a]) {
		j--
	}
	if i > j {
		v[j], v[a] = v[a], v[j]
		t[j], t[a] = t[a], t[j]
		return j, true
	}
	v[i], v[j] = v[j], v[i]
	t[i], t[j] = t[j], t[i]
	i++
	j--

	for {
		for i <= j && v[i] < v[a] {
			i++
		}
		for i <= j && !(v[j] < v[a]) {
			j--
		}
		if i > j {
			break
		}
		v[i], v[j] = v[j], v[i]
		t[i], t[j] = t[j], t[i]
		i++
		j--
	}
	v[j], v[a] = v[a], v[j]
	t[j], t[a] = t[a], t[j]
	return j, false
}

// partitionEqualPairs partitions (v,t)[a:b] into elements equal to
// v[pivot] followed by elements greater than v[pivot]. It assumes
// (v,t)[a:b] does not contain elements smaller than v[pivot].
func partitionEqualPairs(v, t []float64, a, b, pivot int) (newpivot int) {
	v[a], v[pivot] = v[pivot], v[a]
	t[a], t[pivot] = t[pivot], t[a]
	i, j := a+1, b-1 // i and j are inclusive of the elements remaining to be partitioned

	for {
		for i <= j && !(v[a] < v[i]) {
			i++
		}
		for i <= j && v[a] < v[j] {
			j--
		}
		if i > j {
			break
		}
		v[i], v[j] = v[j], v[i]
		t[i], t[j] = t[j], t[i]
		i++
		j--
	}
	return i
}

// partialInsertionSortPairs partially sorts a slice, returns true if
// the slice is sorted at the end.
func partialInsertionSortPairs(v, t []float64, a, b int) bool {
	const (
		maxSteps         = 5  // maximum number of adjacent out-of-order pairs that will get shifted
		shortestShifting = 50 // don't shift any elements on short arrays
	)
	i := a + 1
	for j := 0; j < maxSteps; j++ {
		for i < b && !(v[i] < v[i-1]) {
			i++
		}

		if i == b {
			return true
		}

		if b-a < shortestShifting {
			return false
		}

		v[i], v[i-1] = v[i-1], v[i]
		t[i], t[i-1] = t[i-1], t[i]

		// Shift the smaller one to the left.
		if i-a >= 2 {
			for j := i - 1; j >= 1; j-- {
				if !(v[j] < v[j-1]) {
					break
				}
				v[j], v[j-1] = v[j-1], v[j]
				t[j], t[j-1] = t[j-1], t[j]
			}
		}
		// Shift the greater one to the right.
		if b-i >= 2 {
			for j := i + 1; j < b; j++ {
				if !(v[j] < v[j-1]) {
					break
				}
				v[j], v[j-1] = v[j-1], v[j]
				t[j], t[j-1] = t[j-1], t[j]
			}
		}
	}
	return false
}

// breakPatternsPairs scatters some elements around in an attempt to
// break some patterns that might cause imbalanced partitions in
// quicksort.
func breakPatternsPairs(v, t []float64, a, b int) {
	length := b - a
	if length >= 8 {
		random := xorshift(length)
		modulus := nextPowerOfTwo(length)

		for idx := a + (length/4)*2 - 1; idx <= a+(length/4)*2+1; idx++ {
			other := int(uint(random.next()) & (modulus - 1))
			if other >= length {
				other -= length
			}
			v[idx], v[a+other] = v[a+other], v[idx]
			t[idx], t[a+other] = t[a+other], t[idx]
		}
	}
}

// choosePivotPairs chooses a pivot in v[a:b].
//
// [0,8): chooses a static pivot.
// [8,shortestNinther): uses the simple median-of-three method.
// [shortestNinther,∞): uses the Tukey ninther method.
func choosePivotPairs(v []float64, a, b int) (pivot int, hint sortHint) {
	const (
		shortestNinther = 50
		maxSwaps        = 4 * 3
	)

	l := b - a

	var (
		swaps int
		i     = a + l/4*1
		j     = a + l/4*2
		k     = a + l/4*3
	)

	if l >= 8 {
		if l >= shortestNinther {
			// Tukey ninther method.
			i = medianAdjacentPairs(v, i, &swaps)
			j = medianAdjacentPairs(v, j, &swaps)
			k = medianAdjacentPairs(v, k, &swaps)
		}
		// Find the median among i, j, k and stores it into j.
		j = medianPairs(v, i, j, k, &swaps)
	}

	switch swaps {
	case 0:
		return j, hintIncreasing
	case maxSwaps:
		return j, hintDecreasing
	default:
		return j, hintUnknown
	}
}

// order2Pairs returns x,y where v[x] <= v[y], where x,y=a,b or x,y=b,a.
func order2Pairs(v []float64, a, b int, swaps *int) (int, int) {
	if v[b] < v[a] {
		*swaps++
		return b, a
	}
	return a, b
}

// medianPairs returns x where v[x] is the median of v[a],v[b],v[c],
// where x is a, b, or c.
func medianPairs(v []float64, a, b, c int, swaps *int) int {
	a, b = order2Pairs(v, a, b, swaps)
	b, c = order2Pairs(v, b, c, swaps)
	a, b = order2Pairs(v, a, b, swaps)
	return b
}

// medianAdjacentPairs finds the median of v[a-1], v[a], v[a+1] and
// stores the index into a.
func medianAdjacentPairs(v []float64, a int, swaps *int) int {
	return medianPairs(v, a-1, a, a+1, swaps)
}

func reverseRangePairs(v, t []float64, a, b int) {
	i := a
	j := b - 1
	for i < j {
		v[i], v[j] = v[j], v[i]
		t[i], t[j] = t[j], t[i]
		i++
		j--
	}
}

// ---------------------------------------------------------------------
// Ints shape: []int under a value comparator.
// ---------------------------------------------------------------------

// pdqInts sorts d[a:b] under less; limit is the number of allowed bad
// pivots before falling back to heapsort.
func pdqInts(d []int, less func(x, y int) bool, a, b, limit int) {
	const maxInsertion = 12

	var (
		wasBalanced    = true // whether the last partitioning was reasonably balanced
		wasPartitioned = true // whether the slice was already partitioned
	)

	for {
		length := b - a

		if length <= maxInsertion {
			insertionSortInts(d, less, a, b)
			return
		}

		// Fall back to heapsort if too many bad choices were made.
		if limit == 0 {
			heapSortInts(d, less, a, b)
			return
		}

		// If the last partitioning was imbalanced, we need to break patterns.
		if !wasBalanced {
			breakPatternsInts(d, a, b)
			limit--
		}

		pivot, hint := choosePivotInts(d, less, a, b)
		if hint == hintDecreasing {
			reverseRangeInts(d, a, b)
			// The chosen pivot was pivot-a elements after the start of the array.
			// After reversing it is pivot-a elements before the end of the array.
			pivot = (b - 1) - (pivot - a)
			hint = hintIncreasing
		}

		// The slice is likely already sorted.
		if wasBalanced && wasPartitioned && hint == hintIncreasing {
			if partialInsertionSortInts(d, less, a, b) {
				return
			}
		}

		// Probably the slice contains many duplicate elements, partition the
		// slice into elements equal to and elements greater than the pivot.
		if a > 0 && !less(d[a-1], d[pivot]) {
			a = partitionEqualInts(d, less, a, b, pivot)
			continue
		}

		mid, alreadyPartitioned := partitionInts(d, less, a, b, pivot)
		wasPartitioned = alreadyPartitioned

		leftLen, rightLen := mid-a, b-mid
		balanceThreshold := length / 8
		if leftLen < rightLen {
			wasBalanced = leftLen >= balanceThreshold
			pdqInts(d, less, a, mid, limit)
			a = mid + 1
		} else {
			wasBalanced = rightLen >= balanceThreshold
			pdqInts(d, less, mid+1, b, limit)
			b = mid
		}
	}
}

func insertionSortInts(d []int, less func(x, y int) bool, a, b int) {
	for i := a + 1; i < b; i++ {
		for j := i; j > a && less(d[j], d[j-1]); j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

func siftDownInts(d []int, less func(x, y int) bool, lo, hi, first int) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			break
		}
		if child+1 < hi && less(d[first+child], d[first+child+1]) {
			child++
		}
		if !less(d[first+root], d[first+child]) {
			return
		}
		d[first+root], d[first+child] = d[first+child], d[first+root]
		root = child
	}
}

func heapSortInts(d []int, less func(x, y int) bool, a, b int) {
	first := a
	lo := 0
	hi := b - a

	// Build heap with greatest element at top.
	for i := (hi - 1) / 2; i >= 0; i-- {
		siftDownInts(d, less, i, hi, first)
	}

	// Pop elements, largest first, into end of data.
	for i := hi - 1; i >= 0; i-- {
		d[first], d[first+i] = d[first+i], d[first]
		siftDownInts(d, less, lo, i, first)
	}
}

func partitionInts(d []int, less func(x, y int) bool, a, b, pivot int) (newpivot int, alreadyPartitioned bool) {
	d[a], d[pivot] = d[pivot], d[a]
	i, j := a+1, b-1 // i and j are inclusive of the elements remaining to be partitioned

	for i <= j && less(d[i], d[a]) {
		i++
	}
	for i <= j && !less(d[j], d[a]) {
		j--
	}
	if i > j {
		d[j], d[a] = d[a], d[j]
		return j, true
	}
	d[i], d[j] = d[j], d[i]
	i++
	j--

	for {
		for i <= j && less(d[i], d[a]) {
			i++
		}
		for i <= j && !less(d[j], d[a]) {
			j--
		}
		if i > j {
			break
		}
		d[i], d[j] = d[j], d[i]
		i++
		j--
	}
	d[j], d[a] = d[a], d[j]
	return j, false
}

func partitionEqualInts(d []int, less func(x, y int) bool, a, b, pivot int) (newpivot int) {
	d[a], d[pivot] = d[pivot], d[a]
	i, j := a+1, b-1 // i and j are inclusive of the elements remaining to be partitioned

	for {
		for i <= j && !less(d[a], d[i]) {
			i++
		}
		for i <= j && less(d[a], d[j]) {
			j--
		}
		if i > j {
			break
		}
		d[i], d[j] = d[j], d[i]
		i++
		j--
	}
	return i
}

func partialInsertionSortInts(d []int, less func(x, y int) bool, a, b int) bool {
	const (
		maxSteps         = 5  // maximum number of adjacent out-of-order pairs that will get shifted
		shortestShifting = 50 // don't shift any elements on short arrays
	)
	i := a + 1
	for j := 0; j < maxSteps; j++ {
		for i < b && !less(d[i], d[i-1]) {
			i++
		}

		if i == b {
			return true
		}

		if b-a < shortestShifting {
			return false
		}

		d[i], d[i-1] = d[i-1], d[i]

		// Shift the smaller one to the left.
		if i-a >= 2 {
			for j := i - 1; j >= 1; j-- {
				if !less(d[j], d[j-1]) {
					break
				}
				d[j], d[j-1] = d[j-1], d[j]
			}
		}
		// Shift the greater one to the right.
		if b-i >= 2 {
			for j := i + 1; j < b; j++ {
				if !less(d[j], d[j-1]) {
					break
				}
				d[j], d[j-1] = d[j-1], d[j]
			}
		}
	}
	return false
}

func breakPatternsInts(d []int, a, b int) {
	length := b - a
	if length >= 8 {
		random := xorshift(length)
		modulus := nextPowerOfTwo(length)

		for idx := a + (length/4)*2 - 1; idx <= a+(length/4)*2+1; idx++ {
			other := int(uint(random.next()) & (modulus - 1))
			if other >= length {
				other -= length
			}
			d[idx], d[a+other] = d[a+other], d[idx]
		}
	}
}

func choosePivotInts(d []int, less func(x, y int) bool, a, b int) (pivot int, hint sortHint) {
	const (
		shortestNinther = 50
		maxSwaps        = 4 * 3
	)

	l := b - a

	var (
		swaps int
		i     = a + l/4*1
		j     = a + l/4*2
		k     = a + l/4*3
	)

	if l >= 8 {
		if l >= shortestNinther {
			// Tukey ninther method.
			i = medianAdjacentInts(d, less, i, &swaps)
			j = medianAdjacentInts(d, less, j, &swaps)
			k = medianAdjacentInts(d, less, k, &swaps)
		}
		// Find the median among i, j, k and stores it into j.
		j = medianInts(d, less, i, j, k, &swaps)
	}

	switch swaps {
	case 0:
		return j, hintIncreasing
	case maxSwaps:
		return j, hintDecreasing
	default:
		return j, hintUnknown
	}
}

func order2Ints(d []int, less func(x, y int) bool, a, b int, swaps *int) (int, int) {
	if less(d[b], d[a]) {
		*swaps++
		return b, a
	}
	return a, b
}

func medianInts(d []int, less func(x, y int) bool, a, b, c int, swaps *int) int {
	a, b = order2Ints(d, less, a, b, swaps)
	b, c = order2Ints(d, less, b, c, swaps)
	a, b = order2Ints(d, less, a, b, swaps)
	return b
}

func medianAdjacentInts(d []int, less func(x, y int) bool, a int, swaps *int) int {
	return medianInts(d, less, a-1, a, a+1, swaps)
}

func reverseRangeInts(d []int, a, b int) {
	i := a
	j := b - 1
	for i < j {
		d[i], d[j] = d[j], d[i]
		i++
		j--
	}
}
