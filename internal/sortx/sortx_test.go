package sortx

import (
	"sort"
	"testing"

	"gsight/internal/rng"
)

// cases enumerates the value shapes that drive pdqsort through its
// distinct strategies: random, heavy duplicates (partitionEqual),
// already sorted and reversed (partialInsertionSort), sawtooth
// (breakPatterns) and constant.
func cases(n int, r *rng.Rand) [][]float64 {
	random := make([]float64, n)
	dups := make([]float64, n)
	asc := make([]float64, n)
	desc := make([]float64, n)
	saw := make([]float64, n)
	flat := make([]float64, n)
	for i := 0; i < n; i++ {
		random[i] = r.Range(-100, 100)
		dups[i] = float64(int(r.Range(0, 4)))
		asc[i] = float64(i)
		desc[i] = float64(n - i)
		saw[i] = float64(i % 7)
		flat[i] = 1.5
	}
	return [][]float64{random, dups, asc, desc, saw, flat}
}

var sizes = []int{0, 1, 2, 3, 7, 12, 13, 40, 100, 257, 1000, 2048}

// TestPairsMatchesSortSlice proves the Pairs port performs the exact
// permutation of the equivalent sort.Slice call — equal values land in
// the same relative positions, which the paired target array exposes.
func TestPairsMatchesSortSlice(t *testing.T) {
	r := rng.New(99)
	for _, n := range sizes {
		for ci, vals := range cases(n, r) {
			v1 := append([]float64(nil), vals...)
			t1 := make([]float64, n)
			for i := range t1 {
				t1[i] = float64(i) // unique tags expose the permutation
			}
			Pairs(v1, t1)

			type pair struct{ v, t float64 }
			pairs := make([]pair, n)
			for i := range pairs {
				pairs[i] = pair{vals[i], float64(i)}
			}
			sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

			for i := 0; i < n; i++ {
				if v1[i] != pairs[i].v || t1[i] != pairs[i].t {
					t.Fatalf("n=%d case=%d pos=%d: Pairs (%v,%v) != sort.Slice (%v,%v)",
						n, ci, i, v1[i], t1[i], pairs[i].v, pairs[i].t)
				}
			}
		}
	}
}

// TestIntsMatchesSortSlice checks Ints against sort.Slice under a
// total-order comparator (key, then element value on ties) over the
// same adversarial shapes. With a total order every correct sort —
// stable or not — produces one permutation, so the two must agree
// exactly.
func TestIntsMatchesSortSlice(t *testing.T) {
	r := rng.New(7)
	for _, n := range sizes {
		for ci, keys := range cases(n, r) {
			ids1 := make([]int, n)
			for i := range ids1 {
				ids1[i] = i
			}
			ids2 := append([]int(nil), ids1...)
			less := func(x, y int) bool {
				if keys[x] != keys[y] {
					return keys[x] < keys[y]
				}
				return x < y
			}
			Ints(ids1, less)
			sort.Slice(ids2, func(a, b int) bool { return less(ids2[a], ids2[b]) })
			for i := 0; i < n; i++ {
				if ids1[i] != ids2[i] {
					t.Fatalf("n=%d case=%d pos=%d: Ints %d != sort.Slice %d",
						n, ci, i, ids1[i], ids2[i])
				}
			}
		}
	}
}

// TestIntsSortsNonContiguousIDs exercises the schedulers' actual shape:
// the slice holds arbitrary server ids (not 0..n-1) and the comparator
// indexes side tables by value.
func TestIntsSortsNonContiguousIDs(t *testing.T) {
	r := rng.New(11)
	const n = 500
	key := make([]float64, 4*n)
	for i := range key {
		key[i] = float64(int(r.Range(0, 9)))
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 4 * i // sparse ids into the key table
	}
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	want := append([]int(nil), ids...)
	less := func(x, y int) bool {
		if key[x] != key[y] {
			return key[x] < key[y]
		}
		return x < y
	}
	Ints(ids, less)
	sort.Slice(want, func(a, b int) bool { return less(want[a], want[b]) })
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("pos %d: got %d want %d", i, ids[i], want[i])
		}
	}
}
