package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Flight-recorder binary format (little-endian, packed, no padding):
//
//	header  "GFR1" | version u16 | servers u16 | stepS f64      (16 B)
//	frame   simTimeS f64 | step u32 | flags u8 | activeServers u16
//	        | pending u32 | density f32 | goodDensity f32
//	        | cpuUtil f32 | memUtil f32                          (35 B)
//	        then per server: cpuDemand f32 | memUsed f32 | flags u8
//
// Every frame is the same size, so readers can seek by step and a
// checkpointed (frames, bytes) offset identifies an exact truncation
// point. The header is written lazily before the first frame — a
// resumed run Rewinds to a non-zero offset and never duplicates it.
const (
	flightMagic   = "GFR1"
	FlightVersion = 1

	// Frame flags.
	FrameDegraded      = 1 << 0 // platform in degraded placement mode
	FramePredictorDown = 1 << 1 // predictor fault window active

	// Per-server flags.
	ServerDown = 1 << 0 // node crashed
	ServerSlow = 1 << 1 // straggler (slowdown factor active)
)

const flightHeaderSize = 16

// flightFrameSize is the fixed frame size for a cluster of n servers.
func flightFrameSize(n int) int { return 35 + 9*n }

// Frame is one step sample: the cluster state the flight recorder
// captures every platform step.
type Frame struct {
	SimTimeS      float64
	Step          uint32
	Flags         uint8
	ActiveServers uint16
	// Pending is the batch-job submissions still ahead in the arrival
	// timeline (not the raw engine queue depth, which would leak
	// crash-schedule events and break crash/resume byte-identity).
	Pending uint32
	Density       float32
	GoodDensity   float32
	CPUUtil       float32
	MemUtil       float32
	// Per-server columns, each len == header servers.
	CPUDemand   []float32
	MemUsed     []float32
	ServerFlags []uint8
}

// Flight is the step-sampled flight recorder: one fixed-size binary
// frame per platform step, appended to w. Like the tracer it counts
// (frames, bytes) for checkpoint-aware Rewind, builds frames in a
// reusable buffer, and treats write errors as best-effort.
type Flight struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	servers int
	stepS   float64
	frames  uint64
	bytes   int64
	err     error
}

// NewFlight records frames for a servers-sized cluster stepping every
// stepS simulated seconds. Callers own w's lifecycle.
func NewFlight(w io.Writer, servers int, stepS float64) *Flight {
	return &Flight{w: w, servers: servers, stepS: stepS}
}

// Frames returns the number of frames recorded so far.
func (f *Flight) Frames() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// Err returns the first write error, if any.
func (f *Flight) Err() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Offset returns the recording position — frames and bytes — for
// checkpointing.
func (f *Flight) Offset() (frames uint64, bytes int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames, f.bytes
}

// Rewind resets the recording position to a checkpointed Offset. The
// caller owns the underlying writer and must have truncated it to the
// matching byte offset.
func (f *Flight) Rewind(frames uint64, bytes int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.frames = frames
	f.bytes = bytes
	f.mu.Unlock()
}

// Record appends one frame. The per-server slices must be servers
// long; extra fields in fr beyond the format are ignored.
func (f *Flight) Record(fr *Frame) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frames == 0 && f.bytes == 0 {
		b := append(f.buf[:0], flightMagic...)
		b = binary.LittleEndian.AppendUint16(b, FlightVersion)
		b = binary.LittleEndian.AppendUint16(b, uint16(f.servers))
		b = binary.LittleEndian.AppendUint64(b, floatBits(f.stepS))
		f.write(b)
		f.buf = b
	}
	b := f.buf[:0]
	b = binary.LittleEndian.AppendUint64(b, floatBits(fr.SimTimeS))
	b = binary.LittleEndian.AppendUint32(b, fr.Step)
	b = append(b, fr.Flags)
	b = binary.LittleEndian.AppendUint16(b, fr.ActiveServers)
	b = binary.LittleEndian.AppendUint32(b, fr.Pending)
	b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.Density))
	b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.GoodDensity))
	b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.CPUUtil))
	b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.MemUtil))
	for s := 0; s < f.servers; s++ {
		b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.CPUDemand[s]))
		b = binary.LittleEndian.AppendUint32(b, float32Bits(fr.MemUsed[s]))
		b = append(b, fr.ServerFlags[s])
	}
	f.buf = b
	f.frames++
	f.write(b)
}

// write appends b, tracking bytes. Callers hold f.mu.
func (f *Flight) write(b []byte) {
	f.bytes += int64(len(b))
	if _, err := f.w.Write(b); err != nil && f.err == nil {
		f.err = err
	}
}

// FlightData is a fully decoded recording.
type FlightData struct {
	Version int
	Servers int
	StepS   float64
	Frames  []Frame
}

// ReadFlight decodes a flight recording. A truncated final frame —
// possible after a crash without a clean flush — is dropped, matching
// the tracer's truncation tolerance. An empty stream (no header yet)
// decodes as an empty recording.
func ReadFlight(r io.Reader) (*FlightData, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return &FlightData{}, nil
	}
	if len(data) < flightHeaderSize || string(data[:4]) != flightMagic {
		return nil, errors.New("obs: not a flight recording (bad magic)")
	}
	version := int(binary.LittleEndian.Uint16(data[4:]))
	if version != FlightVersion {
		return nil, fmt.Errorf("obs: flight recording schema %d not supported (want %d)", version, FlightVersion)
	}
	servers := int(binary.LittleEndian.Uint16(data[6:]))
	fd := &FlightData{
		Version: version,
		Servers: servers,
		StepS:   bitsFloat(binary.LittleEndian.Uint64(data[8:])),
	}
	fsz := flightFrameSize(servers)
	for off := flightHeaderSize; off+fsz <= len(data); off += fsz {
		b := data[off : off+fsz]
		fr := Frame{
			SimTimeS:      bitsFloat(binary.LittleEndian.Uint64(b)),
			Step:          binary.LittleEndian.Uint32(b[8:]),
			Flags:         b[12],
			ActiveServers: binary.LittleEndian.Uint16(b[13:]),
			Pending:       binary.LittleEndian.Uint32(b[15:]),
			Density:       bitsFloat32(binary.LittleEndian.Uint32(b[19:])),
			GoodDensity:   bitsFloat32(binary.LittleEndian.Uint32(b[23:])),
			CPUUtil:       bitsFloat32(binary.LittleEndian.Uint32(b[27:])),
			MemUtil:       bitsFloat32(binary.LittleEndian.Uint32(b[31:])),
			CPUDemand:     make([]float32, servers),
			MemUsed:       make([]float32, servers),
			ServerFlags:   make([]uint8, servers),
		}
		for s := 0; s < servers; s++ {
			p := 35 + 9*s
			fr.CPUDemand[s] = bitsFloat32(binary.LittleEndian.Uint32(b[p:]))
			fr.MemUsed[s] = bitsFloat32(binary.LittleEndian.Uint32(b[p+4:]))
			fr.ServerFlags[s] = b[p+8]
		}
		fd.Frames = append(fd.Frames, fr)
	}
	return fd, nil
}
