// Package obs is the observability layer on top of internal/telemetry:
// invocation-lifecycle tracing (Chrome trace-event JSON), a
// step-sampled binary flight recorder, and online prediction-quality
// tracking with Page–Hinkley drift detection.
//
// Everything is recorded in simulation time only, so a fixed-seed run
// produces byte-identical outputs, and every stream counts its own
// (records, bytes) offsets with a Rewind like the decision log, so a
// crash/resume recording is identical to an uninterrupted one. The
// whole package is nil-safe: a nil *Recorder (observability disabled)
// makes every hook a predictable branch and keeps the platform's
// steady-state step loop allocation-free.
package obs

import (
	"encoding/json"
	"io"
	"math"
)

func floatBits(v float64) uint64   { return math.Float64bits(v) }
func bitsFloat(b uint64) float64   { return math.Float64frombits(b) }
func float32Bits(v float32) uint32 { return math.Float32bits(v) }
func bitsFloat32(b uint32) float32 { return math.Float32frombits(b) }

// Config selects what a Recorder captures. Either writer may be nil to
// disable that stream; prediction-quality tracking is always on (it
// feeds drift events and costs nothing on disk unless traced).
type Config struct {
	// Trace receives the Chrome trace-event stream; nil disables
	// lifecycle tracing.
	Trace io.Writer
	// Flight receives the binary flight recording; nil disables it.
	Flight io.Writer
	// Servers and StepS describe the cluster the flight recorder
	// samples (frame geometry and header fields).
	Servers int
	StepS   float64
	// PHLambda/PHDelta tune the Page–Hinkley drift detector;
	// non-positive values get NewPredQ's defaults.
	PHLambda float64
	PHDelta  float64
}

// Recorder is the run-attached observability bundle. The zero of its
// pointer type (nil) means observability is disabled; every method is
// safe to call on nil and does nothing.
type Recorder struct {
	tr *Tracer
	fl *Flight
	pq *PredQ
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	r := &Recorder{pq: NewPredQ(cfg.PHLambda, cfg.PHDelta)}
	if cfg.Trace != nil {
		r.tr = NewTracer(cfg.Trace)
	}
	if cfg.Flight != nil {
		r.fl = NewFlight(cfg.Flight, cfg.Servers, cfg.StepS)
	}
	return r
}

// Enabled reports whether any observability is attached.
func (r *Recorder) Enabled() bool { return r != nil }

// Trace returns the lifecycle tracer (nil-safe; may be nil).
func (r *Recorder) Trace() *Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Flight returns the flight recorder (nil-safe; may be nil).
func (r *Recorder) Flight() *Flight {
	if r == nil {
		return nil
	}
	return r.fl
}

// PredQ returns the prediction-quality tracker (nil-safe; may be nil).
func (r *Recorder) PredQ() *PredQ {
	if r == nil {
		return nil
	}
	return r.pq
}

// TrackPrediction folds one predicted/observed pair into the quality
// tracker, records it as a trace sample, and — when the drift detector
// fires — records the drift in the trace and returns it so the caller
// can emit the predictor_drift decision event.
func (r *Recorder) TrackPrediction(simTimeS float64, archetype, qos string, predicted, observed float64) (DriftInfo, bool) {
	if r == nil {
		return DriftInfo{}, false
	}
	r.tr.PredSample(simTimeS, archetype, qos, predicted, observed)
	d, fired := r.pq.Track(archetype, qos, predicted, observed)
	if fired {
		r.tr.Drift(simTimeS, &d)
	}
	return d, fired
}

// Err returns the first stream write error, if any — recording is
// best-effort and never fails the run; callers surface this at exit.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	if err := r.tr.Err(); err != nil {
		return err
	}
	return r.fl.Err()
}

// State is a Recorder's checkpointed position: stream offsets plus the
// serialized prediction-quality tracker. It rides inside the platform
// checkpoint payload; resuming truncates each stream file to its byte
// offset and Rewinds the counters, so the resumed run re-emits exactly
// the records the crash cut off.
type State struct {
	TraceEvents  uint64          `json:"trace_events"`
	TraceBytes   int64           `json:"trace_bytes"`
	FlightFrames uint64          `json:"flight_frames"`
	FlightBytes  int64           `json:"flight_bytes"`
	PredQ        json.RawMessage `json:"predq,omitempty"`
}

// DecodeState parses a checkpointed Recorder state (e.g. for
// PeekCheckpoint, which needs the byte offsets to truncate stream
// files before resuming). A nil raw decodes to the zero State.
func DecodeState(raw json.RawMessage) (State, error) {
	var st State
	if len(raw) == 0 {
		return st, nil
	}
	err := json.Unmarshal(raw, &st)
	return st, err
}

// CheckpointState captures the Recorder's position for a checkpoint.
// The caller must have flushed any buffering around the stream writers
// first (the platform's snapshot path does, via FlushLog) so the
// on-disk bytes cover the recorded offsets.
func (r *Recorder) CheckpointState() (json.RawMessage, error) {
	if r == nil {
		return nil, nil
	}
	var st State
	st.TraceEvents, st.TraceBytes = r.tr.Offset()
	st.FlightFrames, st.FlightBytes = r.fl.Offset()
	var err error
	if st.PredQ, err = r.pq.marshal(); err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// RestoreCheckpoint rewinds the Recorder to a checkpointed state. The
// caller owns the stream files and must have truncated them to the
// recorded byte offsets (a nil/absent state rewinds everything to
// zero, matching files truncated to empty).
func (r *Recorder) RestoreCheckpoint(raw json.RawMessage) error {
	if r == nil {
		return nil
	}
	st, err := DecodeState(raw)
	if err != nil {
		return err
	}
	r.tr.Rewind(st.TraceEvents, st.TraceBytes)
	r.fl.Rewind(st.FlightFrames, st.FlightBytes)
	if len(st.PredQ) > 0 {
		return r.pq.unmarshal(st.PredQ)
	}
	*r.pq = *NewPredQ(r.pq.Lambda, r.pq.Delta)
	return nil
}
