package obs

import (
	"encoding/json"
	"math"
)

// Prediction-quality tracking: every (predicted, observed) pair the
// platform sees feeds a rolling-window residual tracker, overall and
// per archetype, plus a Page–Hinkley drift detector on the absolute
// relative error stream. The platform records the samples in the trace
// (so gsight-inspect can rebuild error-over-time offline) and emits a
// predictor_drift decision event when the detector fires.
//
// All state is sim-time driven and fully serializable, so a resumed
// run's tracker continues exactly where the checkpoint left it and
// drift events land on the same step as in an uninterrupted run.

// predWindowCap is the rolling-window length for signed error and MAPE.
const predWindowCap = 128

// calibBins is the number of calibration buckets over the
// predicted/observed log2-ratio range [-2, 2] (4x under-prediction to
// 4x over-prediction, outer bins catching the overflow).
const calibBins = 9

// QStat is the rolling error statistics for one residual stream.
type QStat struct {
	Count uint64    `json:"count"`          // samples ever seen
	Ring  []float64 `json:"ring,omitempty"` // last <=predWindowCap signed relative errors
	Next  int       `json:"next"`           // ring write position
	Calib []uint64  `json:"calib,omitempty"`
}

// add folds one signed relative error into the window.
func (s *QStat) add(relErr, ratio float64) {
	if len(s.Calib) == 0 {
		s.Calib = make([]uint64, calibBins)
	}
	if len(s.Ring) < predWindowCap {
		s.Ring = append(s.Ring, relErr)
	} else {
		s.Ring[s.Next] = relErr
		s.Next = (s.Next + 1) % predWindowCap
	}
	s.Count++
	// log2 ratio in [-2, 2] maps linearly onto the bins; the outer
	// bins absorb everything beyond 4x either way.
	lr := math.Log2(ratio)
	bin := int((lr + 2) / 4 * calibBins)
	if bin < 0 {
		bin = 0
	}
	if bin >= calibBins {
		bin = calibBins - 1
	}
	s.Calib[bin]++
}

// MeanErr returns the rolling mean signed relative error.
func (s *QStat) MeanErr() float64 {
	if len(s.Ring) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range s.Ring {
		sum += e
	}
	return sum / float64(len(s.Ring))
}

// MAPE returns the rolling mean absolute percentage error.
func (s *QStat) MAPE() float64 {
	if len(s.Ring) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range s.Ring {
		sum += math.Abs(e)
	}
	return sum / float64(len(s.Ring))
}

// Window returns the rolling-window sample count.
func (s *QStat) Window() int { return len(s.Ring) }

// phState is a Page–Hinkley detector over a non-negative error stream:
// it accumulates deviations of each sample from the running mean
// (minus a tolerance delta) and fires when the accumulator rises
// lambda above its running minimum — i.e. when recent errors shifted
// up from their historical level.
type phState struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M    float64 `json:"m"`
	Min  float64 `json:"min"`
}

// add folds x in and reports whether drift was detected; the detector
// resets itself after firing so repeated drift re-arms cleanly.
func (p *phState) add(x, delta, lambda float64) (float64, bool) {
	p.N++
	p.Mean += (x - p.Mean) / float64(p.N)
	p.M += x - p.Mean - delta
	if p.M < p.Min {
		p.Min = p.M
	}
	ph := p.M - p.Min
	if ph > lambda {
		*p = phState{}
		return ph, true
	}
	return ph, false
}

// DriftInfo describes one drift detection.
type DriftInfo struct {
	Archetype string
	QoS       string
	Window    int
	MeanErr   float64
	MAPE      float64
	PH        float64
}

// PredQ tracks online prediction quality. It is not safe for
// concurrent use; the platform drives it from its single-threaded
// event loop.
type PredQ struct {
	// Lambda is the Page–Hinkley detection threshold and Delta its
	// tolerance, both in units of absolute relative error.
	Lambda float64
	Delta  float64

	overall QStat
	byArch  map[string]*QStat
	ph      phState
}

// predqState is the serialized form for checkpoints.
type predqState struct {
	Overall QStat             `json:"overall"`
	ByArch  map[string]*QStat `json:"by_arch,omitempty"`
	PH      phState           `json:"ph"`
}

// NewPredQ builds a tracker with the given Page–Hinkley parameters;
// non-positive values get defaults tuned for relative-error streams
// (delta 0.05, lambda 2.0: roughly, a sustained ~5-point MAPE shift
// over a few dozen samples fires).
func NewPredQ(lambda, delta float64) *PredQ {
	if lambda <= 0 {
		lambda = 2.0
	}
	if delta <= 0 {
		delta = 0.05
	}
	return &PredQ{Lambda: lambda, Delta: delta, byArch: map[string]*QStat{}}
}

// Track folds one predicted/observed pair in and reports whether the
// drift detector fired on this sample. Non-positive observations are
// ignored (no meaningful relative error). The returned DriftInfo is
// valid only when drift is true.
func (q *PredQ) Track(archetype, qos string, predicted, observed float64) (DriftInfo, bool) {
	if q == nil || observed <= 0 || math.IsNaN(predicted) || math.IsInf(predicted, 0) {
		return DriftInfo{}, false
	}
	relErr := (predicted - observed) / observed
	ratio := math.Inf(1)
	if predicted > 0 {
		ratio = predicted / observed
	}
	q.overall.add(relErr, ratio)
	st := q.byArch[archetype]
	if st == nil {
		st = &QStat{}
		q.byArch[archetype] = st
	}
	st.add(relErr, ratio)
	ph, fired := q.ph.add(math.Abs(relErr), q.Delta, q.Lambda)
	if !fired {
		return DriftInfo{}, false
	}
	return DriftInfo{
		Archetype: archetype,
		QoS:       qos,
		Window:    q.overall.Window(),
		MeanErr:   q.overall.MeanErr(),
		MAPE:      q.overall.MAPE(),
		PH:        ph,
	}, true
}

// Overall returns the overall rolling statistics.
func (q *PredQ) Overall() *QStat {
	if q == nil {
		return &QStat{}
	}
	return &q.overall
}

// Archetype returns the rolling statistics for one archetype (nil when
// unseen).
func (q *PredQ) Archetype(name string) *QStat {
	if q == nil {
		return nil
	}
	return q.byArch[name]
}

// marshal serializes the tracker for a checkpoint.
func (q *PredQ) marshal() (json.RawMessage, error) {
	return json.Marshal(predqState{Overall: q.overall, ByArch: q.byArch, PH: q.ph})
}

// unmarshal restores a checkpointed tracker state.
func (q *PredQ) unmarshal(raw json.RawMessage) error {
	var st predqState
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	q.overall = st.Overall
	q.byArch = st.ByArch
	if q.byArch == nil {
		q.byArch = map[string]*QStat{}
	}
	q.ph = st.PH
	return nil
}
