package obs

import (
	"io"
	"strconv"
	"sync"
)

// TraceSchema is the trace format version, recorded in a metadata
// event at the head of every trace so gsight-inspect can reject
// streams it does not understand.
const TraceSchema = 1

// Tracer streams invocation-lifecycle events in the Chrome trace-event
// JSON format, one event object per line. The stream is the array-body
// form Perfetto and chrome://tracing accept directly: it opens with
// "[\n" and every event line ends with ",\n" — a trailing comma and a
// missing "]" are tolerated by both viewers, which is what makes the
// format truncation-tolerant and crash-safe. gsight-inspect's trace
// subcommand re-wraps it into a strict {"traceEvents": [...]} object.
//
// Determinism: timestamps are simulation time converted to
// microseconds (the trace-event unit) — never wall clock — so a
// fixed-seed run emits a byte-identical trace. Events are built by
// hand into a reusable buffer under a mutex, like the decision log, so
// steady-state tracing allocates nothing.
//
// The preamble (array opener plus metadata events) is written lazily
// before the first event: a resumed run Rewinds to a non-zero offset
// and never duplicates it.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	events uint64
	bytes  int64
	err    error
}

// NewTracer streams trace events to w. Callers own w's lifecycle (and
// any buffering/flushing); the tracer only writes whole lines.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Events returns the number of events emitted so far (the preamble's
// metadata events included).
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write error, if any — tracing is best-effort
// and never fails the traced operation.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Offset returns the trace position — events emitted and bytes written
// — for checkpointing. A resumed run that truncates its trace file to
// the byte offset and calls Rewind continues the exact same stream.
func (t *Tracer) Offset() (events uint64, bytes int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events, t.bytes
}

// Rewind resets the trace position to a checkpointed Offset. It
// adjusts only the counters: the caller owns the underlying writer and
// must have truncated it to the matching byte offset.
func (t *Tracer) Rewind(events uint64, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = events
	t.bytes = bytes
	t.mu.Unlock()
}

// write appends b to the stream, tracking bytes. Callers hold t.mu.
func (t *Tracer) write(b []byte) {
	t.bytes += int64(len(b))
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// emit finishes the event line in b and writes it. Callers hold t.mu.
func (t *Tracer) emit(b []byte) {
	b = append(b, '}', ',', '\n')
	t.buf = b // retain grown capacity for the next event
	t.events++
	t.write(b)
}

// begin opens a new event: preamble if the stream is empty, then
// {"name":"<name>","cat":"<cat>","ph":"<ph>","ts":<simTimeS*1e6>,
// "pid":1,"tid":0. Callers hold t.mu and must close with emit.
func (t *Tracer) begin(name, cat string, ph byte, simTimeS float64) []byte {
	if t.events == 0 && t.bytes == 0 {
		t.write([]byte("[\n"))
		b := append(t.buf[:0], `{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"gsight platform"}`...)
		t.emit(b)
		b = append(t.buf[:0], `{"name":"gsight_trace","ph":"M","pid":1,"tid":0,"args":{"schema":`...)
		b = strconv.AppendInt(b, TraceSchema, 10)
		b = append(b, '}')
		t.emit(b)
	}
	b := append(t.buf[:0], `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, cat)
	b = append(b, `,"ph":"`...)
	b = append(b, ph, '"')
	b = append(b, `,"ts":`...)
	b = strconv.AppendFloat(b, simTimeS*1e6, 'f', -1, 64)
	b = append(b, `,"pid":1,"tid":0`...)
	return b
}

// argsKey opens the args object on first use and appends a field key.
func argsKey(b []byte, first *bool, key string) []byte {
	if *first {
		b = append(b, `,"args":{`...)
		*first = false
	} else {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

func argsStr(b []byte, first *bool, key, v string) []byte {
	b = argsKey(b, first, key)
	return strconv.AppendQuote(b, v)
}

func argsInt(b []byte, first *bool, key string, v int) []byte {
	b = argsKey(b, first, key)
	return strconv.AppendInt(b, int64(v), 10)
}

func argsFloat(b []byte, first *bool, key string, v float64) []byte {
	b = argsKey(b, first, key)
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func argsBool(b []byte, first *bool, key string, v bool) []byte {
	b = argsKey(b, first, key)
	return strconv.AppendBool(b, v)
}

func argsInts(b []byte, first *bool, key string, vs []int) []byte {
	b = argsKey(b, first, key)
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

// closeArgs closes the args object if one was opened.
func closeArgs(b []byte, first bool) []byte {
	if !first {
		b = append(b, '}')
	}
	return b
}

// JobBegin opens a job's async span at its admission: the job was
// placed and its functions are starting. servers is the chosen server
// per function; predJCTS is the predictor's JCT estimate in seconds
// (0 when unavailable).
func (t *Tracer) JobBegin(id int, archetype, job string, simTimeS float64, servers []int, predJCTS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin(archetype, "job", 'b', simTimeS)
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	first := true
	b = argsStr(b, &first, "job", job)
	b = argsInts(b, &first, "servers", servers)
	if predJCTS > 0 {
		b = argsFloat(b, &first, "pred_jct_s", predJCTS)
	}
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// JobEnd closes a job's async span at completion with the observed
// outcome: job completion time, slowdown versus solo execution, and
// the SLA verdict (slaOK is meaningful only when checked is true —
// jobs without a JCT SLA are never judged).
func (t *Tracer) JobEnd(id int, archetype string, simTimeS, jctS, slowdown float64, checked, slaOK bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin(archetype, "job", 'e', simTimeS)
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	first := true
	b = argsFloat(b, &first, "jct_s", jctS)
	if slowdown > 0 {
		b = argsFloat(b, &first, "slowdown", slowdown)
	}
	if checked {
		b = argsBool(b, &first, "sla_ok", slaOK)
	}
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// PlacementInfo is one scheduling decision as the tracer records it:
// how hard the scheduler searched, what it decided, and what it
// predicted for the accepted candidate.
type PlacementInfo struct {
	Workload     string
	Outcome      string // "placed", "fallback", "degraded", "rejected", "error"
	Reason       string // qualifies non-"placed" outcomes
	SpreadLevels int    // candidate spread levels tried
	SLAChecks    int    // QoS predictions issued vetting candidates
	Placement    []int  // chosen server per function (nil when rejected)
	// PredIPC/PredJCTS are the predictor's estimates for the accepted
	// candidate (0 when the decision used no prediction).
	PredIPC  float64
	PredJCTS float64
}

// Placement records a scheduling decision as an instant event.
func (t *Tracer) Placement(simTimeS float64, p *PlacementInfo) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin("placement", "sched", 'i', simTimeS)
	b = append(b, `,"s":"t"`...)
	first := true
	b = argsStr(b, &first, "workload", p.Workload)
	b = argsStr(b, &first, "outcome", p.Outcome)
	if p.Reason != "" {
		b = argsStr(b, &first, "reason", p.Reason)
	}
	b = argsInt(b, &first, "spread_levels", p.SpreadLevels)
	b = argsInt(b, &first, "sla_checks", p.SLAChecks)
	if p.Placement != nil {
		b = argsInts(b, &first, "placement", p.Placement)
	}
	if p.PredIPC > 0 {
		b = argsFloat(b, &first, "pred_ipc", p.PredIPC)
	}
	if p.PredJCTS > 0 {
		b = argsFloat(b, &first, "pred_jct_s", p.PredJCTS)
	}
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// Reactive records a runtime SLA-control action (corunner eviction or
// reactive spread) as an instant event — the migration phase of the
// affected jobs' lifecycle.
func (t *Tracer) Reactive(simTimeS float64, action, service string, moved int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin(action, "reactive", 'i', simTimeS)
	b = append(b, `,"s":"t"`...)
	first := true
	b = argsStr(b, &first, "service", service)
	b = argsInt(b, &first, "moved", moved)
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// Fault records an injected fault transition as an instant event.
func (t *Tracer) Fault(simTimeS float64, kind string, node int, displaced int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin(kind, "fault", 'i', simTimeS)
	b = append(b, `,"s":"g"`...)
	first := true
	b = argsInt(b, &first, "node", node)
	if displaced != 0 {
		b = argsInt(b, &first, "displaced", displaced)
	}
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// Degraded records the platform entering or leaving degraded placement
// mode as an instant event.
func (t *Tracer) Degraded(simTimeS float64, entered bool, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin("degraded", "fault", 'i', simTimeS)
	b = append(b, `,"s":"g"`...)
	first := true
	b = argsBool(b, &first, "entered", entered)
	b = argsStr(b, &first, "reason", reason)
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// PredSample records one prediction-quality sample — a predicted vs
// observed pair for an archetype — as an instant event in the "predq"
// category. gsight-inspect rebuilds error-over-time and calibration
// views from these.
func (t *Tracer) PredSample(simTimeS float64, archetype, qos string, predicted, observed float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin("sample", "predq", 'i', simTimeS)
	b = append(b, `,"s":"t"`...)
	first := true
	b = argsStr(b, &first, "archetype", archetype)
	b = argsStr(b, &first, "qos", qos)
	b = argsFloat(b, &first, "pred", predicted)
	b = argsFloat(b, &first, "obs", observed)
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}

// Drift records a predictor-drift detection as an instant event.
func (t *Tracer) Drift(simTimeS float64, d *DriftInfo) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.begin("predictor_drift", "predq", 'i', simTimeS)
	b = append(b, `,"s":"g"`...)
	first := true
	b = argsStr(b, &first, "archetype", d.Archetype)
	b = argsStr(b, &first, "qos", d.QoS)
	b = argsInt(b, &first, "window", d.Window)
	b = argsFloat(b, &first, "mean_err", d.MeanErr)
	b = argsFloat(b, &first, "mape", d.MAPE)
	b = argsFloat(b, &first, "ph", d.PH)
	b = closeArgs(b, first)
	t.emit(b)
	t.mu.Unlock()
}
