package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// driveTracer emits a fixed event sequence; split lets tests cut the
// sequence at an arbitrary point to simulate a crash/resume.
func driveTracer(t *Tracer, from, to int) {
	for i := from; i < to; i++ {
		ts := float64(i) * 30
		switch i % 4 {
		case 0:
			t.JobBegin(i, "matmul", "matmul#0", ts, []int{i % 3}, 1.5)
		case 1:
			t.Placement(ts, &PlacementInfo{
				Workload: "social-network", Outcome: "placed",
				SpreadLevels: 3, SLAChecks: 7, Placement: []int{0, 1}, PredIPC: 1.2,
			})
		case 2:
			t.PredSample(ts, "matmul", "jct", 1.4, 1.6)
		case 3:
			t.JobEnd(i-3, "matmul", ts, 42.5, 1.18, true, true)
		}
	}
}

func TestTracerStreamShape(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	driveTracer(tr, 0, 8)
	tr.Fault(300, "node-down", 2, 5)
	tr.Degraded(310, true, "predictor-unavailable")
	tr.Reactive(320, "evict-corunner", "social-network", 2)

	out := buf.String()
	if !strings.HasPrefix(out, "[\n") {
		t.Fatalf("stream must open with the array bracket, got %q", out[:10])
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// Every event line must be valid JSON once the trailing comma is
	// stripped — that is the truncation-tolerance contract.
	var events int
	for _, ln := range lines[1:] {
		ln = strings.TrimSuffix(ln, ",")
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		events++
		if _, ok := ev["ts"]; !ok && ev["ph"] != "M" {
			t.Fatalf("non-metadata event without ts: %q", ln)
		}
	}
	if got := tr.Events(); got != uint64(events) {
		t.Fatalf("Events() = %d, stream has %d", got, events)
	}
	if _, b := tr.Offset(); b != int64(len(out)) {
		t.Fatalf("Offset bytes = %d, wrote %d", b, len(out))
	}
	if !strings.Contains(out, `"schema":1`) {
		t.Fatal("preamble must carry the schema version")
	}
}

func TestTracerDeterminismAndRewind(t *testing.T) {
	var full bytes.Buffer
	tr := NewTracer(&full)
	driveTracer(tr, 0, 12)

	// Same calls, second tracer: byte-identical.
	var again bytes.Buffer
	tr2 := NewTracer(&again)
	driveTracer(tr2, 0, 12)
	if !bytes.Equal(full.Bytes(), again.Bytes()) {
		t.Fatal("same event sequence must produce byte-identical traces")
	}

	// Crash after 7 events, resume from a checkpoint taken at 5:
	// truncate to the checkpointed offset, Rewind, replay the tail.
	var crashed bytes.Buffer
	tr3 := NewTracer(&crashed)
	driveTracer(tr3, 0, 5)
	ckEvents, ckBytes := tr3.Offset()
	driveTracer(tr3, 5, 7) // lost to the crash
	crashed.Truncate(int(ckBytes))
	tr4 := NewTracer(&crashed)
	tr4.Rewind(ckEvents, ckBytes)
	driveTracer(tr4, 5, 12)
	if !bytes.Equal(full.Bytes(), crashed.Bytes()) {
		t.Fatal("crash/resume trace differs from uninterrupted trace")
	}
}

func makeFrame(i, servers int) *Frame {
	fr := &Frame{
		SimTimeS:      float64(i) * 30,
		Step:          uint32(i),
		Flags:         uint8(i % 4),
		ActiveServers: uint16(servers - i%2),
		Pending:       uint32(10 + i),
		Density:       float32(i) * 0.5,
		GoodDensity:   float32(i) * 0.4,
		CPUUtil:       0.7,
		MemUtil:       0.3,
		CPUDemand:     make([]float32, servers),
		MemUsed:       make([]float32, servers),
		ServerFlags:   make([]uint8, servers),
	}
	for s := 0; s < servers; s++ {
		fr.CPUDemand[s] = float32(i*s) * 0.1
		fr.MemUsed[s] = float32(s) * 1.5
		fr.ServerFlags[s] = uint8(s % 3)
	}
	return fr
}

func TestFlightRoundTrip(t *testing.T) {
	const servers = 4
	var buf bytes.Buffer
	fl := NewFlight(&buf, servers, 30)
	for i := 0; i < 10; i++ {
		fl.Record(makeFrame(i, servers))
	}
	if fl.Frames() != 10 {
		t.Fatalf("Frames() = %d, want 10", fl.Frames())
	}
	if _, b := fl.Offset(); b != int64(buf.Len()) {
		t.Fatalf("Offset bytes = %d, wrote %d", b, buf.Len())
	}
	fd, err := ReadFlight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fd.Servers != servers || fd.StepS != 30 || len(fd.Frames) != 10 {
		t.Fatalf("decoded servers=%d stepS=%v frames=%d", fd.Servers, fd.StepS, len(fd.Frames))
	}
	got := fd.Frames[7]
	want := makeFrame(7, servers)
	if got.SimTimeS != want.SimTimeS || got.Step != want.Step || got.Flags != want.Flags ||
		got.Pending != want.Pending || got.Density != want.Density {
		t.Fatalf("frame 7 mismatch: got %+v want %+v", got, *want)
	}
	for s := 0; s < servers; s++ {
		if got.CPUDemand[s] != want.CPUDemand[s] || got.MemUsed[s] != want.MemUsed[s] ||
			got.ServerFlags[s] != want.ServerFlags[s] {
			t.Fatalf("frame 7 server %d mismatch", s)
		}
	}

	// A torn final frame (crash mid-write) is dropped, not an error.
	torn := buf.Bytes()[:buf.Len()-5]
	fd, err = ReadFlight(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Frames) != 9 {
		t.Fatalf("torn recording decoded %d frames, want 9", len(fd.Frames))
	}
}

func TestFlightRewind(t *testing.T) {
	const servers = 3
	var full bytes.Buffer
	fl := NewFlight(&full, servers, 30)
	for i := 0; i < 8; i++ {
		fl.Record(makeFrame(i, servers))
	}

	var crashed bytes.Buffer
	fl2 := NewFlight(&crashed, servers, 30)
	for i := 0; i < 4; i++ {
		fl2.Record(makeFrame(i, servers))
	}
	ckFrames, ckBytes := fl2.Offset()
	fl2.Record(makeFrame(4, servers)) // lost to the crash
	crashed.Truncate(int(ckBytes))
	fl3 := NewFlight(&crashed, servers, 30)
	fl3.Rewind(ckFrames, ckBytes)
	for i := 4; i < 8; i++ {
		fl3.Record(makeFrame(i, servers))
	}
	if !bytes.Equal(full.Bytes(), crashed.Bytes()) {
		t.Fatal("crash/resume recording differs from uninterrupted recording")
	}
}

func TestFlightRejectsUnknownSchema(t *testing.T) {
	var buf bytes.Buffer
	fl := NewFlight(&buf, 2, 30)
	fl.Record(makeFrame(0, 2))
	data := buf.Bytes()
	data[4] = 99 // bump the version field
	if _, err := ReadFlight(bytes.NewReader(data)); err == nil {
		t.Fatal("unknown flight schema must be rejected")
	}
	if _, err := ReadFlight(bytes.NewReader([]byte("not a recording"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

func TestPredQStats(t *testing.T) {
	q := NewPredQ(0, 0)
	// Constant +10% over-prediction: MAPE 0.1, mean +0.1, no drift.
	for i := 0; i < 50; i++ {
		if _, fired := q.Track("matmul", "jct", 1.1, 1.0); fired {
			t.Fatal("steady errors must not fire drift")
		}
	}
	if m := q.Overall().MAPE(); math.Abs(m-0.1) > 1e-9 {
		t.Fatalf("MAPE = %v, want 0.1", m)
	}
	if m := q.Archetype("matmul").MeanErr(); math.Abs(m-0.1) > 1e-9 {
		t.Fatalf("mean err = %v, want 0.1", m)
	}
	if q.Archetype("dd") != nil {
		t.Fatal("unseen archetype must report nil stats")
	}
	// Samples with no meaningful relative error are ignored.
	q.Track("matmul", "jct", 1.0, 0)
	q.Track("matmul", "jct", math.NaN(), 1.0)
	if q.Overall().Count != 50 {
		t.Fatalf("count = %d, want 50", q.Overall().Count)
	}
}

func TestPredQDrift(t *testing.T) {
	q := NewPredQ(2.0, 0.05)
	// Accurate phase, then the predictor goes badly wrong: drift fires.
	for i := 0; i < 100; i++ {
		if _, fired := q.Track("matmul", "ipc", 1.0, 1.0); fired {
			t.Fatalf("drift fired during the accurate phase (sample %d)", i)
		}
	}
	fired := false
	for i := 0; i < 100 && !fired; i++ {
		var d DriftInfo
		d, fired = q.Track("matmul", "ipc", 2.0, 1.0)
		if fired {
			if d.Archetype != "matmul" || d.QoS != "ipc" || d.PH <= 2.0 {
				t.Fatalf("bad drift info: %+v", d)
			}
		}
	}
	if !fired {
		t.Fatal("sustained 100% errors must fire the drift detector")
	}
	// The detector re-arms after firing: once a new accurate baseline
	// is established, a fresh error shift fires again.
	for i := 0; i < 100; i++ {
		q.Track("matmul", "ipc", 1.02, 1.0)
	}
	fired = false
	for i := 0; i < 200 && !fired; i++ {
		_, fired = q.Track("matmul", "ipc", 3.0, 1.0)
	}
	if !fired {
		t.Fatal("drift detector must re-arm after firing")
	}
}

// TestRecorderCheckpointResume drives a full Recorder through a
// simulated crash/resume and requires both streams plus the tracker to
// continue exactly as an uninterrupted run would.
func TestRecorderCheckpointResume(t *testing.T) {
	const servers = 3
	drive := func(r *Recorder, from, to int) {
		for i := from; i < to; i++ {
			ts := float64(i) * 30
			driveTracer(r.Trace(), i, i+1)
			r.Flight().Record(makeFrame(i, servers))
			pred := 1.0 + float64(i%7)*0.3
			if d, fired := r.TrackPrediction(ts, "matmul", "jct", pred, 1.0); fired {
				r.Trace().Drift(ts, &d)
			}
		}
	}
	newRec := func(tb, fb *bytes.Buffer) *Recorder {
		return New(Config{Trace: tb, Flight: fb, Servers: servers, StepS: 30, PHLambda: 1.0, PHDelta: 0.01})
	}

	var ftr, ffl bytes.Buffer
	full := newRec(&ftr, &ffl)
	drive(full, 0, 40)

	var ctr, cfl bytes.Buffer
	rec := newRec(&ctr, &cfl)
	drive(rec, 0, 25)
	raw, err := rec.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	drive(rec, 25, 31) // lost to the crash
	st, err := DecodeState(raw)
	if err != nil {
		t.Fatal(err)
	}
	ctr.Truncate(int(st.TraceBytes))
	cfl.Truncate(int(st.FlightBytes))
	rec2 := newRec(&ctr, &cfl)
	if err := rec2.RestoreCheckpoint(raw); err != nil {
		t.Fatal(err)
	}
	drive(rec2, 25, 40)

	if !bytes.Equal(ftr.Bytes(), ctr.Bytes()) {
		t.Fatal("crash/resume trace differs from uninterrupted trace")
	}
	if !bytes.Equal(ffl.Bytes(), cfl.Bytes()) {
		t.Fatal("crash/resume flight recording differs from uninterrupted recording")
	}
	a, _ := full.CheckpointState()
	b, _ := rec2.CheckpointState()
	if !bytes.Equal(a, b) {
		t.Fatalf("tracker state diverged:\n%s\n%s", a, b)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	r.Trace().JobBegin(1, "a", "a#0", 0, nil, 0)
	r.Flight().Record(nil)
	if _, fired := r.TrackPrediction(0, "a", "jct", 1, 1); fired {
		t.Fatal("nil recorder fired drift")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if raw, err := r.CheckpointState(); raw != nil || err != nil {
		t.Fatal("nil recorder checkpoint state must be empty")
	}
	if err := r.RestoreCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
}
