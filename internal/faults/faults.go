// Package faults is a deterministic, seed-driven fault scheduler for
// the platform simulation: node crashes and recoveries, slow-node
// stragglers (a capacity multiplier), cold-start storms and
// predictor-unavailable windows. A Schedule is pure data (JSON-
// serializable, seed-reproducible via Scenario); an Injector expands it
// into a timeline of state changes the platform registers on its event
// engine. Nothing here reads wall clocks or random state at run time,
// so a same-seed run under the same schedule stays byte-identical.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Kind names a fault event type.
type Kind string

// Fault kinds.
const (
	// NodeCrash takes a node offline at AtS; DurationS > 0 schedules
	// the matching recovery, 0 means the node stays down.
	NodeCrash Kind = "node-crash"
	// NodeRecover brings a crashed node back.
	NodeRecover Kind = "node-recover"
	// SlowNode turns a node into a straggler: its effective capacity is
	// multiplied by Factor (0 < Factor < 1) for DurationS seconds
	// (0 means until an explicit NodeRestore).
	SlowNode Kind = "slow-node"
	// NodeRestore clears a straggler back to nominal capacity.
	NodeRestore Kind = "node-restore"
	// ColdStartStorm forces Factor of each workload's instances to
	// cold-start for DurationS seconds (deployment churn bursts).
	ColdStartStorm Kind = "cold-start-storm"
	// PredictorDown makes the QoS predictor unavailable for DurationS
	// seconds (0 means until an explicit PredictorUp): the platform
	// must degrade to its fallback policy, not fail.
	PredictorDown Kind = "predictor-down"
	// PredictorUp ends a predictor outage.
	PredictorUp Kind = "predictor-up"
	// ControllerCrash kills the controller process itself at AtS. A
	// checkpoint-enabled platform run returns ErrControllerCrashed and
	// can be resumed from disk; the re-executed run recognizes the
	// already-taken crash (via its WAL marker) and does not die again.
	// Node, Factor and DurationS are ignored.
	ControllerCrash Kind = "controller-crash"
)

// Event is one fault occurrence on the simulation timeline.
type Event struct {
	AtS  float64 `json:"at_s"`
	Kind Kind    `json:"kind"`
	// Node is the target server for node-scoped kinds; ignored (and
	// serialized as 0) for cluster-wide kinds.
	Node int `json:"node,omitempty"`
	// Factor is the capacity multiplier (slow-node) or forced
	// cold-start fraction (cold-start-storm).
	Factor float64 `json:"factor,omitempty"`
	// DurationS > 0 auto-schedules the inverse event at AtS+DurationS.
	DurationS float64 `json:"duration_s,omitempty"`
}

// Schedule is a named list of fault events. The zero value (or nil) is
// a healthy run.
type Schedule struct {
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// nodeScoped reports whether the kind targets a single server.
func nodeScoped(k Kind) bool {
	switch k {
	case NodeCrash, NodeRecover, SlowNode, NodeRestore:
		return true
	}
	return false
}

// Validate checks the schedule against a cluster of numServers nodes.
func (s *Schedule) Validate(numServers int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		switch e.Kind {
		case NodeCrash, NodeRecover, SlowNode, NodeRestore, ColdStartStorm, PredictorDown, PredictorUp, ControllerCrash:
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if e.AtS < 0 {
			return fmt.Errorf("faults: event %d (%s): negative time %g", i, e.Kind, e.AtS)
		}
		if e.DurationS < 0 {
			return fmt.Errorf("faults: event %d (%s): negative duration %g", i, e.Kind, e.DurationS)
		}
		if nodeScoped(e.Kind) && (e.Node < 0 || e.Node >= numServers) {
			return fmt.Errorf("faults: event %d (%s): node %d outside [0,%d)", i, e.Kind, e.Node, numServers)
		}
		switch e.Kind {
		case SlowNode:
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("faults: event %d (slow-node): factor %g outside (0,1)", i, e.Factor)
			}
		case ColdStartStorm:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d (cold-start-storm): factor %g outside (0,1]", i, e.Factor)
			}
		}
	}
	return nil
}

// ParseJSON decodes a schedule from JSON:
//
//	{"name":"...","events":[{"at_s":300,"kind":"node-crash","node":2,"duration_s":600}, ...]}
func ParseJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parsing schedule: %w", err)
	}
	return &s, nil
}

// LoadFile reads a JSON schedule from path.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	s, err := ParseJSON(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}

// Op is one atomic state transition of the expanded timeline. Windowed
// events (DurationS > 0) expand into a begin/end op pair.
type Op int

// Timeline operations.
const (
	OpNodeDown Op = iota
	OpNodeUp
	OpSlowSet
	OpSlowClear
	OpStormStart
	OpStormEnd
	OpPredictorDown
	OpPredictorUp
	OpControllerCrash
)

// String returns the op's decision-log name.
func (o Op) String() string {
	switch o {
	case OpNodeDown:
		return "node-down"
	case OpNodeUp:
		return "node-up"
	case OpSlowSet:
		return "slow-set"
	case OpSlowClear:
		return "slow-clear"
	case OpStormStart:
		return "storm-start"
	case OpStormEnd:
		return "storm-end"
	case OpPredictorDown:
		return "predictor-down"
	case OpPredictorUp:
		return "predictor-up"
	case OpControllerCrash:
		return "controller-crash"
	}
	return "unknown"
}

// Change is one scheduled state transition.
type Change struct {
	AtS float64
	Op  Op
	// Node is -1 for cluster-wide ops.
	Node   int
	Factor float64
}

// Injector holds a schedule's expanded timeline plus the live fault
// state the platform queries while running. It is not goroutine-safe;
// the platform applies changes from its single-threaded event loop.
type Injector struct {
	changes []Change
	down    []bool
	slow    []float64
	// predDown and storms count overlapping windows so nested
	// schedules unwind correctly.
	predDown  int
	storms    int
	stormFrac float64
}

// NewInjector validates the schedule and expands it into a timeline.
// A nil schedule yields an injector with no changes (always healthy).
func NewInjector(s *Schedule, numServers int) (*Injector, error) {
	if err := s.Validate(numServers); err != nil {
		return nil, err
	}
	in := &Injector{
		down: make([]bool, numServers),
		slow: make([]float64, numServers),
	}
	for i := range in.slow {
		in.slow[i] = 1
	}
	if s == nil {
		return in, nil
	}
	for _, e := range s.Events {
		node := e.Node
		if !nodeScoped(e.Kind) {
			node = -1
		}
		begin, end := opsFor(e.Kind)
		in.changes = append(in.changes, Change{AtS: e.AtS, Op: begin, Node: node, Factor: e.Factor})
		if e.DurationS > 0 && end >= 0 {
			in.changes = append(in.changes, Change{AtS: e.AtS + e.DurationS, Op: end, Node: node, Factor: e.Factor})
		}
	}
	// Stable sort: simultaneous changes keep their expansion order, so
	// the timeline (and every run under it) is deterministic.
	sort.SliceStable(in.changes, func(i, j int) bool {
		return in.changes[i].AtS < in.changes[j].AtS
	})
	return in, nil
}

// opsFor maps an event kind to its begin op and (for windowed kinds)
// the op ending the window; end is -1 for kinds that are themselves
// endings.
func opsFor(k Kind) (begin, end Op) {
	switch k {
	case NodeCrash:
		return OpNodeDown, OpNodeUp
	case NodeRecover:
		return OpNodeUp, -1
	case SlowNode:
		return OpSlowSet, OpSlowClear
	case NodeRestore:
		return OpSlowClear, -1
	case ColdStartStorm:
		return OpStormStart, OpStormEnd
	case PredictorDown:
		return OpPredictorDown, OpPredictorUp
	case PredictorUp:
		return OpPredictorUp, -1
	case ControllerCrash:
		return OpControllerCrash, -1
	}
	return -1, -1
}

// Changes returns the expanded timeline in time order. The caller must
// not mutate it.
func (in *Injector) Changes() []Change { return in.changes }

// Apply transitions the injector's live state.
func (in *Injector) Apply(c Change) {
	switch c.Op {
	case OpNodeDown:
		in.down[c.Node] = true
	case OpNodeUp:
		in.down[c.Node] = false
	case OpSlowSet:
		in.slow[c.Node] = c.Factor
	case OpSlowClear:
		in.slow[c.Node] = 1
	case OpStormStart:
		in.storms++
		in.stormFrac = c.Factor
	case OpStormEnd:
		if in.storms > 0 {
			in.storms--
		}
	case OpPredictorDown:
		in.predDown++
	case OpPredictorUp:
		if in.predDown > 0 {
			in.predDown--
		}
	case OpControllerCrash:
		// The crash targets the controller process, not cluster state:
		// the platform handles the op itself and the injector's live
		// view is unchanged.
	}
}

// NodeDown reports whether server s is currently crashed.
func (in *Injector) NodeDown(s int) bool { return in.down[s] }

// CapacityFactor returns server s's current capacity multiplier
// (1 = nominal, <1 = straggler).
func (in *Injector) CapacityFactor(s int) float64 { return in.slow[s] }

// PredictorAvailable reports whether the QoS predictor is reachable.
func (in *Injector) PredictorAvailable() bool { return in.predDown == 0 }

// ColdStartFrac returns the forced cold-start fraction of the active
// storm, or 0 when no storm is in progress.
func (in *Injector) ColdStartFrac() float64 {
	if in.storms == 0 {
		return 0
	}
	return in.stormFrac
}

// InjectorState is the injector's live fault state at one instant, in
// checkpoint-serializable form.
type InjectorState struct {
	Down      []bool    `json:"down"`
	Slow      []float64 `json:"slow"`
	PredDown  int       `json:"pred_down"`
	Storms    int       `json:"storms"`
	StormFrac float64   `json:"storm_frac,omitempty"`
}

// ExportState snapshots the live fault state.
func (in *Injector) ExportState() InjectorState {
	return InjectorState{
		Down:      append([]bool(nil), in.down...),
		Slow:      append([]float64(nil), in.slow...),
		PredDown:  in.predDown,
		Storms:    in.storms,
		StormFrac: in.stormFrac,
	}
}

// RestoreState replaces the live fault state with a snapshot. The
// expanded timeline is untouched — the platform re-registers the
// changes still ahead of the snapshot time.
func (in *Injector) RestoreState(s InjectorState) error {
	if len(s.Down) != len(in.down) || len(s.Slow) != len(in.slow) {
		return fmt.Errorf("faults: state for %d/%d servers, injector has %d",
			len(s.Down), len(s.Slow), len(in.down))
	}
	for i, f := range s.Slow {
		if math.IsNaN(f) || f <= 0 || f > 1 {
			return fmt.Errorf("faults: state slow[%d] = %g outside (0,1]", i, f)
		}
	}
	if s.PredDown < 0 || s.Storms < 0 {
		return fmt.Errorf("faults: negative outage counters (%d, %d)", s.PredDown, s.Storms)
	}
	if math.IsNaN(s.StormFrac) || s.StormFrac < 0 || s.StormFrac > 1 {
		return fmt.Errorf("faults: state storm fraction %g outside [0,1]", s.StormFrac)
	}
	copy(in.down, s.Down)
	copy(in.slow, s.Slow)
	in.predDown = s.PredDown
	in.storms = s.Storms
	in.stormFrac = s.StormFrac
	return nil
}
