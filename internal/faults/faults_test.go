package faults

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string // substring of the error, "" = valid
	}{
		{"valid crash", Event{AtS: 10, Kind: NodeCrash, Node: 3, DurationS: 5}, ""},
		{"valid storm", Event{AtS: 0, Kind: ColdStartStorm, Factor: 1}, ""},
		{"unknown kind", Event{Kind: Kind("explode")}, "unknown kind"},
		{"negative time", Event{AtS: -1, Kind: NodeCrash}, "negative time"},
		{"negative duration", Event{Kind: NodeCrash, DurationS: -2}, "negative duration"},
		{"node out of range", Event{Kind: NodeCrash, Node: 8}, "outside [0,8)"},
		{"negative node", Event{Kind: SlowNode, Node: -1, Factor: 0.5}, "outside [0,8)"},
		{"slow factor zero", Event{Kind: SlowNode, Node: 0, Factor: 0}, "outside (0,1)"},
		{"slow factor one", Event{Kind: SlowNode, Node: 0, Factor: 1}, "outside (0,1)"},
		{"storm factor high", Event{Kind: ColdStartStorm, Factor: 1.5}, "outside (0,1]"},
	}
	for _, tc := range cases {
		s := &Schedule{Events: []Event{tc.ev}}
		err := s.Validate(8)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	var nilSchedule *Schedule
	if err := nilSchedule.Validate(4); err != nil {
		t.Errorf("nil schedule must validate: %v", err)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	in := `{"name":"demo","events":[
		{"at_s":300,"kind":"node-crash","node":2,"duration_s":600},
		{"at_s":100,"kind":"slow-node","node":1,"factor":0.5,"duration_s":400},
		{"at_s":50,"kind":"predictor-down","duration_s":200}
	]}`
	s, err := ParseJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Events) != 3 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Events[0].Kind != NodeCrash || s.Events[0].Node != 2 || s.Events[0].DurationS != 600 {
		t.Fatalf("event 0 = %+v", s.Events[0])
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader(`{"events":[{"at_s":1,"kind":"node-crash","when":"now"}]}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}

func TestInjectorExpansion(t *testing.T) {
	s := &Schedule{Events: []Event{
		{AtS: 300, Kind: NodeCrash, Node: 2, DurationS: 600},
		{AtS: 100, Kind: SlowNode, Node: 1, Factor: 0.5, DurationS: 800},
		{AtS: 50, Kind: ColdStartStorm, Factor: 0.4, DurationS: 100},
		{AtS: 900, Kind: PredictorDown}, // open-ended: no auto end
	}}
	in, err := NewInjector(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range in.Changes() {
		got = append(got, c.Op.String())
	}
	// Expanded pairs sorted by time: storm 50/150, slow 100/900,
	// crash 300/900, predictor-down 900 (no end). The two 900s keep
	// expansion order (slow-clear before predictor-down: stable sort).
	want := []string{"storm-start", "slow-set", "storm-end", "node-down", "node-up", "slow-clear", "predictor-down"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timeline %v, want %v", got, want)
	}
	times := in.Changes()
	for i := 1; i < len(times); i++ {
		if times[i].AtS < times[i-1].AtS {
			t.Fatalf("timeline not sorted at %d", i)
		}
	}
}

func TestInjectorStateTransitions(t *testing.T) {
	in, err := NewInjector(&Schedule{Events: []Event{
		{AtS: 10, Kind: NodeCrash, Node: 3, DurationS: 10},
		{AtS: 12, Kind: SlowNode, Node: 1, Factor: 0.5, DurationS: 10},
		{AtS: 14, Kind: ColdStartStorm, Factor: 0.4, DurationS: 4},
		{AtS: 16, Kind: PredictorDown, DurationS: 2},
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if in.NodeDown(3) || in.CapacityFactor(1) != 1 || !in.PredictorAvailable() || in.ColdStartFrac() != 0 {
		t.Fatal("injector not healthy initially")
	}
	for _, c := range in.Changes() {
		in.Apply(c)
		switch {
		case c.AtS == 16 && c.Op == OpPredictorDown:
			if in.PredictorAvailable() {
				t.Fatal("predictor should be down")
			}
			if !in.NodeDown(3) {
				t.Fatal("node 3 should still be down at t=16")
			}
			if in.CapacityFactor(1) != 0.5 {
				t.Fatalf("capacity factor = %v", in.CapacityFactor(1))
			}
			if in.ColdStartFrac() != 0.4 {
				t.Fatalf("storm frac = %v", in.ColdStartFrac())
			}
		}
	}
	// Everything unwound.
	if in.NodeDown(3) || in.CapacityFactor(1) != 1 || !in.PredictorAvailable() || in.ColdStartFrac() != 0 {
		t.Fatalf("injector did not return to healthy: down=%v cap=%v pred=%v storm=%v",
			in.NodeDown(3), in.CapacityFactor(1), in.PredictorAvailable(), in.ColdStartFrac())
	}
}

func TestInjectorNilSchedule(t *testing.T) {
	in, err := NewInjector(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Changes()) != 0 {
		t.Fatal("nil schedule must expand to no changes")
	}
	if !in.PredictorAvailable() || in.NodeDown(0) || in.CapacityFactor(2) != 1 {
		t.Fatal("nil-schedule injector must be healthy")
	}
}

func TestScenarioDeterministicPerSeed(t *testing.T) {
	for _, name := range Names() {
		a, err := Scenario(name, 7, 86400, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Scenario(name, 7, 86400, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", name)
		}
		if len(a.Events) == 0 {
			t.Errorf("%s: empty scenario", name)
		}
		if err := a.Validate(8); err != nil {
			t.Errorf("%s: invalid scenario: %v", name, err)
		}
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	// Node-targeting scenarios must actually use the seed.
	diff := false
	for seed := uint64(0); seed < 8 && !diff; seed++ {
		a, _ := Scenario("node-crash", seed, 86400, 8)
		b, _ := Scenario("node-crash", seed+1, 86400, 8)
		if a.Events[0].Node != b.Events[0].Node {
			diff = true
		}
	}
	if !diff {
		t.Fatal("node-crash picked the same node for 9 consecutive seeds")
	}
}

func TestScenarioUnknown(t *testing.T) {
	if _, err := Scenario("meteor-strike", 1, 1000, 8); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if _, err := Scenario("chaos", 1, 1000, 0); err == nil {
		t.Fatal("zero-size cluster must error")
	}
}

func TestRollingCrashesDistinctNodes(t *testing.T) {
	s, err := Scenario("rolling-crashes", 3, 86400, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range s.Events {
		if seen[e.Node] {
			t.Fatalf("node %d crashed twice", e.Node)
		}
		seen[e.Node] = true
	}
	if len(seen) != 3 {
		t.Fatalf("crashed %d nodes, want 3", len(seen))
	}
}
