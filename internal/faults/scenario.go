package faults

import (
	"fmt"
	"sort"
	"strings"

	"gsight/internal/rng"
)

// Names returns the built-in scenario names in alphabetical order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// builder constructs the events of one named scenario. T is the run
// duration in seconds, n the cluster size, rnd the scenario's private
// stream — the only randomness a scenario may consume.
type builder func(rnd *rng.Rand, T float64, n int) []Event

var builders = map[string]builder{
	"node-crash":       crashScenario,
	"rolling-crashes":  rollingScenario,
	"stragglers":       stragglerScenario,
	"cold-start-storm": stormScenario,
	"predictor-outage": outageScenario,
	"chaos":            chaosScenario,
}

// Scenario builds a named fault schedule for a run of durationS
// seconds over numServers nodes. Event times and targets derive only
// from (name, seed, durationS, numServers), so the same arguments
// always produce the same schedule.
func Scenario(name string, seed uint64, durationS float64, numServers int) (*Schedule, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if numServers <= 0 {
		return nil, fmt.Errorf("faults: scenario %q needs a positive cluster size", name)
	}
	rnd := rng.Stream(seed, "faults:"+name)
	s := &Schedule{Name: name, Events: b(rnd, durationS, numServers)}
	if err := s.Validate(numServers); err != nil {
		return nil, err
	}
	return s, nil
}

// crashScenario kills one random node for a quarter of the run.
func crashScenario(rnd *rng.Rand, T float64, n int) []Event {
	return []Event{{
		AtS: 0.30 * T, Kind: NodeCrash, Node: rnd.Intn(n), DurationS: 0.25 * T,
	}}
}

// rollingScenario crashes up to three distinct nodes in staggered,
// non-overlapping windows — a rolling outage.
func rollingScenario(rnd *rng.Rand, T float64, n int) []Event {
	k := 3
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	nodes := pickDistinct(rnd, n, k)
	var evs []Event
	for i, node := range nodes {
		evs = append(evs, Event{
			AtS: (0.20 + 0.22*float64(i)) * T, Kind: NodeCrash, Node: node, DurationS: 0.12 * T,
		})
	}
	return evs
}

// stragglerScenario slows two distinct nodes in overlapping windows.
func stragglerScenario(rnd *rng.Rand, T float64, n int) []Event {
	nodes := pickDistinct(rnd, n, min2(2, n))
	evs := []Event{{
		AtS: 0.25 * T, Kind: SlowNode, Node: nodes[0], Factor: 0.5, DurationS: 0.30 * T,
	}}
	if len(nodes) > 1 {
		evs = append(evs, Event{
			AtS: 0.40 * T, Kind: SlowNode, Node: nodes[1], Factor: 0.65, DurationS: 0.30 * T,
		})
	}
	return evs
}

// stormScenario forces half of all instances to cold-start for a tenth
// of the run.
func stormScenario(rnd *rng.Rand, T float64, n int) []Event {
	_ = rnd
	return []Event{{
		AtS: 0.35 * T, Kind: ColdStartStorm, Factor: 0.5, DurationS: 0.10 * T,
	}}
}

// outageScenario takes the predictor away for 15% of the run.
func outageScenario(rnd *rng.Rand, T float64, n int) []Event {
	_ = rnd
	return []Event{{
		AtS: 0.40 * T, Kind: PredictorDown, DurationS: 0.15 * T,
	}}
}

// chaosScenario combines one of each disruption across distinct nodes.
func chaosScenario(rnd *rng.Rand, T float64, n int) []Event {
	nodes := pickDistinct(rnd, n, min2(2, n))
	evs := []Event{
		{AtS: 0.15 * T, Kind: SlowNode, Node: nodes[0], Factor: 0.6, DurationS: 0.35 * T},
		{AtS: 0.30 * T, Kind: ColdStartStorm, Factor: 0.4, DurationS: 0.08 * T},
		{AtS: 0.55 * T, Kind: PredictorDown, DurationS: 0.12 * T},
	}
	if len(nodes) > 1 {
		evs = append(evs, Event{AtS: 0.40 * T, Kind: NodeCrash, Node: nodes[1], DurationS: 0.20 * T})
	}
	return evs
}

// pickDistinct draws k distinct node ids via a partial Fisher-Yates
// shuffle of [0,n).
func pickDistinct(rnd *rng.Rand, n, k int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rnd.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids[:k]
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
