package faults

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseSchedule throws arbitrary bytes at the schedule parser: it
// must reject or accept cleanly (no panics), anything accepted must
// survive a marshal/parse round trip, and validation must never panic
// on parsed input.
func FuzzParseSchedule(f *testing.F) {
	f.Add([]byte(`{"name":"mixed","events":[
		{"at_s":300,"kind":"node-crash","node":2,"duration_s":600},
		{"at_s":500,"kind":"slow-node","node":1,"factor":0.5,"duration_s":100},
		{"at_s":900,"kind":"cold-start-storm","factor":0.8,"duration_s":120},
		{"at_s":1200,"kind":"predictor-down","duration_s":300},
		{"at_s":1500,"kind":"controller-crash"}]}`))
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`{"events":[{"at_s":-1,"kind":"node-crash"}]}`))
	f.Add([]byte(`{"events":[{"at_s":0,"kind":"no-such-kind"}]}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = s.Validate(8) // must not panic, error or not
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted schedule does not marshal: %v", err)
		}
		s2, err := ParseJSON(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("marshaled schedule does not re-parse: %v", err)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(s2.Events), len(s.Events))
		}
	})
}
