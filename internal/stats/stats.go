// Package stats provides the descriptive and correlation statistics used
// throughout the Gsight reproduction: percentiles and CDFs for tail
// latency reporting, coefficient of variation for Figure 3, and the
// Pearson and Spearman correlation coefficients used by the Table 3
// feature screening.
package stats

import (
	"errors"
	"gsight/internal/rng"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (std/mean), or 0 when the
// mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Std(xs) / m
}

// Min returns the smallest element of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks. The input is not modified.
// It panics on empty input or p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for already-sorted input, avoiding the
// copy and sort. The caller must guarantee xs is ascending.
func PercentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	return percentileSorted(xs, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P99 is shorthand for the 99th percentile, the paper's headline tail
// latency metric.
func P99(xs []float64) float64 { return Percentile(xs, 99) }

// Median is shorthand for the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant and an error when the
// lengths differ or the input is empty.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient between xs
// and ys (Pearson correlation of the ranks, with ties assigned their
// average rank).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (1-based; ties receive the
// average of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	Frac  float64 // fraction of samples <= Value
}

// CDF returns the empirical cumulative distribution of xs as a sorted
// list of (value, fraction) points, one per distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var pts []CDFPoint
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		pts = append(pts, CDFPoint{Value: sorted[i], Frac: float64(i+1) / n})
	}
	return pts
}

// Histogram bins xs into nbins equal-width bins across [min, max] and
// returns the bin edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// Summary holds the five-number-plus summary reported for each
// experiment series.
type Summary struct {
	N              int
	Mean, Std, CoV float64
	Min, P25       float64
	Median, P75    float64
	P95, P99, Max  float64
}

// Summarize computes a Summary of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		CoV:    CoV(xs),
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// Online accumulates mean and variance incrementally (Welford's
// algorithm); it is used by long platform simulations where storing
// every sample would be wasteful.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Std returns the running population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Variance()) }

// MAPE returns the mean absolute percentage error between predictions
// and truth: mean(|pred-true|/|true|). Entries with true == 0 are
// skipped. The paper's "prediction error" metric (§6.2) is exactly this.
func MAPE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, errors.New("stats: length mismatch")
	}
	sum, n := 0.0, 0
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n), nil
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// BootstrapCI returns the lo..hi percentile bootstrap confidence
// interval of the mean of xs, using n resamples drawn from rnd.
// Experiment reports use it to qualify error estimates.
func BootstrapCI(xs []float64, n int, conf float64, rnd *rng.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if n <= 0 {
		n = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	means := make([]float64, n)
	for b := 0; b < n; b++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rnd.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	alpha := (1 - conf) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha), nil
}
