package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gsight/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Std(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance singleton = %v, want 0", got)
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoV(xs); !almost(got, 2.0/5.0, 1e-12) {
		t.Fatalf("CoV = %v, want 0.4", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Fatalf("CoV zeros = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25 = %v", got)
	}
	// interpolation between ranks
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Fatalf("interp P50 = %v, want 15", got)
	}
	// input not modified
	if xs[0] != 5 {
		t.Fatal("Percentile modified its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64) bool {
		n := r.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 10)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got, err := Pearson(xs, ys); err != nil || !almost(got, 1, 1e-12) {
		t.Fatalf("perfect positive Pearson = %v err=%v", got, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got, _ := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("perfect negative Pearson = %v", got)
	}
	if got, err := Pearson(xs, []float64{3, 3, 3, 3, 3}); err != nil || got != 0 {
		t.Fatalf("constant series Pearson = %v err=%v", got, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Fatal("empty must error")
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	r := rng.New(2)
	if err := quick.Check(func(_ uint64) bool {
		n := r.Intn(100) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 1)
			ys[i] = r.Norm(0, 1)
		}
		got, err := Pearson(xs, ys)
		return err == nil && got >= -1-1e-9 && got <= 1+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearman(t *testing.T) {
	// monotone but nonlinear: Spearman is exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got, err := Spearman(xs, ys); err != nil || !almost(got, 1, 1e-12) {
		t.Fatalf("Spearman monotone = %v err=%v", got, err)
	}
	desc := []float64{125, 64, 27, 8, 1}
	if got, _ := Spearman(xs, desc); !almost(got, -1, 1e-12) {
		t.Fatalf("Spearman anti-monotone = %v", got)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF distinct points = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || !almost(pts[0].Frac, 0.25, 1e-12) {
		t.Fatalf("CDF[0] = %+v", pts[0])
	}
	if pts[1].Value != 2 || !almost(pts[1].Frac, 0.75, 1e-12) {
		t.Fatalf("CDF[1] = %+v", pts[1])
	}
	if pts[2].Value != 3 || !almost(pts[2].Frac, 1, 1e-12) {
		t.Fatalf("CDF[2] = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram shape: %d edges %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Fatal("Histogram(nil) should be nil")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if !almost(s.Mean, 50.5, 1e-12) {
		t.Fatalf("summary mean = %v", s.Mean)
	}
	if s.Median < 50 || s.Median > 51 {
		t.Fatalf("summary median = %v", s.Median)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("summary p99 = %v", s.P99)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.Norm(5, 3)
		o.Add(xs[i])
	}
	if o.N() != 1000 {
		t.Fatalf("Online N = %d", o.N())
	}
	if !almost(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almost(o.Variance(), Variance(xs), 1e-6) {
		t.Fatalf("Online var %v vs batch %v", o.Variance(), Variance(xs))
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil || !almost(got, 0.1, 1e-12) {
		t.Fatalf("MAPE = %v err=%v", got, err)
	}
	// zero-truth entries skipped
	got, err = MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil || !almost(got, 0.1, 1e-12) {
		t.Fatalf("MAPE with zero truth = %v err=%v", got, err)
	}
	if _, err := MAPE([]float64{1}, []float64{}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("all-zero truth must error")
	}
}

func TestMAERMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	mae, err := MAE(pred, truth)
	if err != nil || !almost(mae, 1, 1e-12) {
		t.Fatalf("MAE = %v err=%v", mae, err)
	}
	rmse, err := RMSE(pred, truth)
	if err != nil || !almost(rmse, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE = %v err=%v", rmse, err)
	}
}

func TestCDFIsSortedProperty(t *testing.T) {
	r := rng.New(4)
	if err := quick.Check(func(_ uint64) bool {
		n := r.Intn(200) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 100)
		}
		pts := CDF(xs)
		if !sort.SliceIsSorted(pts, func(a, b int) bool { return pts[a].Value < pts[b].Value }) {
			return false
		}
		prev := 0.0
		for _, p := range pts {
			if p.Frac <= prev || p.Frac > 1+1e-12 {
				return false
			}
			prev = p.Frac
		}
		return almost(pts[len(pts)-1].Frac, 1, 1e-12)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	lo, hi, err := BootstrapCI(xs, 500, 0.95, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%v, %v] excludes the sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 1 {
		t.Fatalf("CI width %v implausible for n=400, std=2", hi-lo)
	}
	// Defaults apply for bad parameters.
	lo2, hi2, err := BootstrapCI(xs, 0, 2, rng.New(1))
	if err != nil || lo2 > hi2 {
		t.Fatalf("defaulted CI broken: [%v, %v] err=%v", lo2, hi2, err)
	}
	if _, _, err := BootstrapCI(nil, 10, 0.95, rng.New(1)); err == nil {
		t.Fatal("empty input must error")
	}
}
