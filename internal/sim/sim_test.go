package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.RunUntil(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	fired := 0
	e.After(1, func() {
		fired++
		e.After(1, func() { fired++ })
	})
	e.RunUntil(3)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.RunUntil(5)
	ran := false
	e.At(1, func() { ran = true }) // in the past
	e.RunUntil(6)
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestEvery(t *testing.T) {
	var e Engine
	count := 0
	e.Every(2, func() bool {
		count++
		return count < 4
	})
	e.RunUntil(100)
	if count != 4 {
		t.Fatalf("Every fired %d times, want 4", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Every stopped", e.Pending())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	var e Engine
	ran := false
	e.At(5, func() { ran = true })
	e.RunUntil(4)
	if ran {
		t.Fatal("event beyond boundary executed")
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %v", e.Now())
	}
	e.RunUntil(5)
	if !ran {
		t.Fatal("boundary event skipped")
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}
