package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.RunUntil(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	fired := 0
	e.After(1, func() {
		fired++
		e.After(1, func() { fired++ })
	})
	e.RunUntil(3)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestPastEventsRunNow(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.RunUntil(5)
	ran := false
	e.At(1, func() { ran = true }) // in the past
	e.RunUntil(6)
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestEvery(t *testing.T) {
	var e Engine
	count := 0
	e.Every(2, func() bool {
		count++
		return count < 4
	})
	e.RunUntil(100)
	if count != 4 {
		t.Fatalf("Every fired %d times, want 4", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Every stopped", e.Pending())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	var e Engine
	ran := false
	e.At(5, func() { ran = true })
	e.RunUntil(4)
	if ran {
		t.Fatal("event beyond boundary executed")
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %v", e.Now())
	}
	e.RunUntil(5)
	if !ran {
		t.Fatal("boundary event skipped")
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestScheduledExecutedCounters(t *testing.T) {
	var e Engine
	if e.Scheduled() != 0 || e.Executed() != 0 {
		t.Fatalf("fresh engine counters = %d/%d", e.Scheduled(), e.Executed())
	}
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	if e.Scheduled() != 5 {
		t.Fatalf("Scheduled = %d, want 5", e.Scheduled())
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed = %d before any Step", e.Executed())
	}
	e.RunUntil(2)
	if e.Executed() != 3 {
		t.Fatalf("Executed = %d after running through t=2, want 3", e.Executed())
	}
	e.RunUntil(10)
	if e.Executed() != e.Scheduled() {
		t.Fatalf("drained engine: Executed %d != Scheduled %d", e.Executed(), e.Scheduled())
	}
	// Counters are process-lifetime: they keep growing across reuse
	// rather than resetting, which is why resume-invariant outputs must
	// never include them.
	e.At(11, func() {})
	if e.Scheduled() != 6 {
		t.Fatalf("Scheduled = %d after reuse, want 6", e.Scheduled())
	}
}

// ---- time-wheel vs reference heap equivalence ----

// refQueue is the container/heap implementation the time-wheel
// replaced, kept as the ordering oracle for the property test.
type refEvent struct {
	time float64
	seq  uint64
	id   int
}

type refQueue struct {
	now    float64
	seq    uint64
	events []refEvent
}

func (q *refQueue) push(t float64, id int) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.events = append(q.events, refEvent{time: t, seq: q.seq, id: id})
	for i := len(q.events) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.events[i], q.events[p] = q.events[p], q.events[i]
		i = p
	}
}

func (q *refQueue) less(i, j int) bool {
	if q.events[i].time != q.events[j].time {
		return q.events[i].time < q.events[j].time
	}
	return q.events[i].seq < q.events[j].seq
}

func (q *refQueue) pop() refEvent {
	top := q.events[0]
	n := len(q.events) - 1
	q.events[0] = q.events[n]
	q.events = q.events[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && q.less(c+1, c) {
			c = c + 1
		}
		if !q.less(c, i) {
			break
		}
		q.events[i], q.events[c] = q.events[c], q.events[i]
		i = c
	}
	q.now = top.time
	return top
}

// splitmix64 is a tiny deterministic PRNG for the property test.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4d049bb133111
	return z ^ (z >> 31)
}

func (s *splitmix64) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// TestWheelMatchesHeapProperty drives the time-wheel and the reference
// heap through the same randomized schedule — bursts of inserts at
// near, same-tick, far-future and past times, interleaved with pops
// and RunUntil boundaries, plus events that schedule more events — and
// requires the execution order to match exactly.
func TestWheelMatchesHeapProperty(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rnd := splitmix64(0xfeed + uint64(trial)*1000003)
		var e Engine
		var ref refQueue
		var got, want []int
		nextID := 0

		schedule := func(t0 float64) {
			id := nextID
			nextID++
			// One in four events reschedules a follow-up, exercising
			// inserts from inside callbacks (cursor mid-frame).
			if rnd.next()%4 == 0 {
				child := nextID
				nextID++
				dt := rnd.float() * 900
				e.At(t0, func() {
					got = append(got, id)
					e.After(dt, func() { got = append(got, child) })
				})
				ref.push(t0, -id-1) // marker: expand on pop
				refChildren[id] = refChild{child, dt}
			} else {
				e.At(t0, func() { got = append(got, id) })
				ref.push(t0, id)
			}
		}

		for op := 0; op < 400; op++ {
			switch rnd.next() % 8 {
			case 0, 1, 2: // near-future insert
				schedule(e.Now() + rnd.float()*300)
			case 3: // same-tick burst (FIFO contract)
				base := e.Now() + rnd.float()*100
				for k := 0; k < 3; k++ {
					schedule(base)
				}
			case 4: // far future: higher wheel levels / overflow
				exp := rnd.next() % 9 // up to ~1e8 s ahead
				mul := 1.0
				for i := uint64(0); i < exp; i++ {
					mul *= 10
				}
				schedule(e.Now() + rnd.float()*mul)
			case 5: // past (clamps to now)
				schedule(e.Now() - rnd.float()*50)
			case 6: // pop a few
				for k := 0; k < 3 && e.Pending() > 0; k++ {
					e.Step()
					stepRef(&ref, &want)
				}
			case 7: // advance the clock across a boundary
				t1 := e.Now() + rnd.float()*5000
				e.RunUntil(t1)
				for len(ref.events) > 0 && ref.events[0].time <= t1 {
					stepRef(&ref, &want)
				}
				if ref.now < t1 {
					ref.now = t1
				}
			}
		}
		for e.Pending() > 0 {
			e.Step()
			stepRef(&ref, &want)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d events, reference executed %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: wheel %v vs heap %v", trial, i, got[i], want[i])
			}
		}
		for k := range refChildren {
			delete(refChildren, k)
		}
	}
}

type refChild struct {
	id int
	dt float64
}

var refChildren = map[int]refChild{}

// stepRef pops the reference queue, expanding reschedule markers the
// same way the engine's callbacks do.
func stepRef(q *refQueue, order *[]int) {
	ev := q.pop()
	if ev.id < 0 {
		id := -ev.id - 1
		*order = append(*order, id)
		c := refChildren[id]
		q.push(ev.time+c.dt, c.id)
		return
	}
	*order = append(*order, ev.id)
}

// TestWheelLongHorizon checks ordering across cascades spanning the
// full wheel hierarchy: events days and weeks apart fire in order and
// interleave correctly with near-term periodic ticks scheduled as the
// clock advances.
func TestWheelLongHorizon(t *testing.T) {
	var e Engine
	var got []float64
	times := []float64{0.1, 30, 1800, 86400, 7 * 86400, 45 * 86400, 400 * 86400}
	for _, tt := range times {
		tt := tt
		e.At(tt, func() { got = append(got, tt) })
	}
	ticks := 0
	e.Every(43200, func() bool { ticks++; return ticks < 900 })
	e.RunUntil(500 * 86400)
	if len(got) != len(times) {
		t.Fatalf("fired %d of %d events", len(got), len(times))
	}
	for i, tt := range times {
		if got[i] != tt {
			t.Fatalf("order: got %v", got)
		}
	}
	if want := 900; ticks != want {
		t.Fatalf("periodic ticks = %d, want %d", ticks, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

// TestEngineStepAllocFree pins the arena contract: steady-state
// schedule/execute cycles after warm-up perform zero heap allocations
// inside the engine.
func TestEngineStepAllocFree(t *testing.T) {
	var e Engine
	var fn func()
	fn = func() {
		if e.Now() < 1e6 {
			e.After(7.25, fn)
		}
	}
	for i := 0; i < 64; i++ {
		e.After(float64(i)*3.5, fn)
	}
	e.RunUntil(1e4) // warm the arena
	allocs := testing.AllocsPerRun(200, func() {
		e.At(e.Now()+11, func() {})
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("engine step allocates %.1f times per op, want 0", allocs)
	}
}
