// Package sim is a minimal discrete-event simulation engine: a clock
// and a time-ordered event queue with deterministic tie-breaking. The
// platform simulation uses it to drive trace arrivals, autoscaler
// ticks and migration cooldowns on one timeline.
//
// The queue is a hierarchical timing wheel (4 levels x 64 slots, 0.25 s
// base tick, ~48 simulated days of span before the overflow list)
// backed by a pooled event arena: scheduling an event is an index
// allocation from a free-list, not a heap allocation, and steady-state
// At/Step cycles are allocation-free. The ordering contract is
// identical to the container/heap implementation it replaced — events
// fire in (time, seq) order, FIFO among simultaneous events — proven
// by a property test against the reference heap (sim_test.go).
package sim

import (
	"context"
	"math"
	"math/bits"

	"gsight/internal/telemetry"
)

const (
	wheelLevels = 4
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1

	// invTick converts seconds to ticks (tick = 0.25 s). The absolute
	// tick is clamped below 2^61 so every abs_k shift stays in range;
	// clamping only coarsens placement — ordering always compares the
	// stored float time, never the tick.
	invTick       = 4.0
	maxTick       = int64(1) << 61
	nilIdx        = int32(-1)
	overflowShift = wheelLevels * wheelBits // 24: ticks beyond abs4 resolution
)

// twEvent is one scheduled callback in the arena. Events form
// singly-linked per-slot lists through next; list order is arbitrary
// (pops scan for the (time, seq) minimum).
type twEvent struct {
	time float64
	seq  uint64
	fn   func()
	next int32
}

// Engine is the simulation core. The zero value is ready to use.
type Engine struct {
	now  float64
	seq  uint64
	cnt  int
	done uint64 // events executed since construction

	// cur is the wheel cursor in absolute ticks. Invariants: cur never
	// passes the earliest queued event's tick, and entering a new
	// L1/L2/L3 frame cascades that frame's slot first, so every level-k
	// event is strictly later than every level-(k-1) event.
	cur int64

	heads [wheelLevels][wheelSlots]int32
	occ   [wheelLevels]uint64 // per-level slot occupancy bitmaps

	overflow int32 // events beyond the L3 horizon, unordered list

	arena []twEvent
	free  int32 // free-list head into arena

	// min cache: a findMin result (always a level-0 resident) kept
	// valid across At calls that don't beat it; -1 when unknown.
	minIdx  int32
	minSlot int32

	ins telemetry.SimInstruments

	initialized bool
}

func (e *Engine) init() {
	if e.initialized {
		return
	}
	e.initialized = true
	for l := range e.heads {
		for s := range e.heads[l] {
			e.heads[l][s] = nilIdx
		}
	}
	e.overflow = nilIdx
	e.free = nilIdx
	e.minIdx = nilIdx
}

// Instrument attaches a telemetry sink (Nop-safe).
func (e *Engine) Instrument(s *telemetry.Sink) { e.ins = s.Sim() }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// tickOf converts a time to an absolute tick, clamped to the
// representable range (NaN and huge times park at the clamp; their
// relative order is still decided by the float comparison at pop).
func tickOf(t float64) int64 {
	v := t * invTick
	if !(v < float64(maxTick)) {
		return maxTick
	}
	if v < 0 {
		return 0
	}
	return int64(v)
}

// less orders events by (time, seq): FIFO among simultaneous events.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// alloc takes an event record from the free-list, growing the arena
// only when it is exhausted.
func (e *Engine) alloc(t float64, seq uint64, fn func()) int32 {
	idx := e.free
	if idx != nilIdx {
		e.free = e.arena[idx].next
	} else {
		e.arena = append(e.arena, twEvent{})
		idx = int32(len(e.arena) - 1)
	}
	e.arena[idx] = twEvent{time: t, seq: seq, fn: fn, next: nilIdx}
	return idx
}

// release returns a record to the free-list, dropping the fn reference
// so the closure can be collected.
func (e *Engine) release(idx int32) {
	e.arena[idx].fn = nil
	e.arena[idx].next = e.free
	e.free = idx
}

// place links an event into the wheel level chosen by slot equality
// against the cursor: level k is the smallest k where the event shares
// the cursor's level-(k+1) frame. This rule (unlike a plain delta
// threshold) guarantees level-k slots never wrap within a frame and
// that every higher-level event is later than every lower-level one.
func (e *Engine) place(idx int32) {
	tick := tickOf(e.arena[idx].time)
	if tick < e.cur {
		tick = e.cur // defensive: At already clamps times below now
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint((l + 1) * wheelBits)
		if tick>>shift == e.cur>>shift {
			s := (tick >> uint(l*wheelBits)) & wheelMask
			e.arena[idx].next = e.heads[l][s]
			e.heads[l][s] = idx
			e.occ[l] |= 1 << uint(s)
			return
		}
	}
	e.arena[idx].next = e.overflow
	e.overflow = idx
}

// At schedules fn at absolute time t; times in the past run at the
// current time (immediately on the next step).
func (e *Engine) At(t float64, fn func()) {
	e.init()
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	e.seq++
	idx := e.alloc(t, e.seq, fn)
	e.place(idx)
	e.cnt++
	// A new global minimum must share the cached minimum's L1 frame
	// (its tick is <= the cached one's), so it landed in level 0 and
	// the cache can be retargeted instead of invalidated.
	if e.minIdx != nilIdx && e.less(idx, e.minIdx) {
		e.minIdx = idx
		e.minSlot = int32((tickOf(t)) & wheelMask)
		if tickOf(t) < e.cur {
			e.minSlot = int32(e.cur & wheelMask)
		}
	}
	e.ins.Scheduled.Inc()
	e.ins.QueueDepth.SetInt(e.cnt)
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn every interval seconds, starting at now+interval,
// until fn returns false.
func (e *Engine) Every(interval float64, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
}

// cascade relinks every event of a slot one level down (or into the
// wheels, for the overflow list) after the cursor entered its frame.
func (e *Engine) cascadeSlot(level int, slot int64) {
	idx := e.heads[level][slot]
	e.heads[level][slot] = nilIdx
	e.occ[level] &^= 1 << uint(slot)
	for idx != nilIdx {
		next := e.arena[idx].next
		e.place(idx)
		idx = next
	}
}

// scanSlot returns the (time, seq)-minimal event of a level-0 slot.
func (e *Engine) scanSlot(slot int64) int32 {
	best := e.heads[0][slot]
	for idx := e.arena[best].next; idx != nilIdx; idx = e.arena[idx].next {
		if e.less(idx, best) {
			best = idx
		}
	}
	return best
}

// findMin advances the cursor (cascading frames as it enters them)
// until the earliest event sits in level 0, then caches and returns
// it. Requires cnt > 0.
func (e *Engine) findMin() int32 {
	if e.minIdx != nilIdx {
		return e.minIdx
	}
	for {
		// Level 0: occupied slots are always at positions >= the
		// cursor's (no wrap, see place), so mask the lower ones off.
		if m := e.occ[0] & (^uint64(0) << uint(e.cur&wheelMask)); m != 0 {
			s := int64(bits.TrailingZeros64(m))
			e.minIdx = e.scanSlot(s)
			e.minSlot = int32(s)
			return e.minIdx
		}
		advanced := false
		for l := 1; l < wheelLevels; l++ {
			pos := uint((e.cur >> uint(l*wheelBits)) & wheelMask)
			m := e.occ[l] & (^uint64(0) << pos)
			if m == 0 {
				continue
			}
			s := int64(bits.TrailingZeros64(m))
			shift := uint(l * wheelBits)
			frame := (e.cur>>shift)&^int64(wheelMask) | s
			if start := frame << shift; start > e.cur {
				e.cur = start
			}
			e.cascadeSlot(l, s)
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// Wheels empty: pull the earliest overflow frame in.
		minAbs := int64(math.MaxInt64)
		for idx := e.overflow; idx != nilIdx; idx = e.arena[idx].next {
			if a := tickOf(e.arena[idx].time) >> overflowShift; a < minAbs {
				minAbs = a
			}
		}
		e.cur = minAbs << overflowShift
		var keep int32 = nilIdx
		idx := e.overflow
		for idx != nilIdx {
			next := e.arena[idx].next
			if tickOf(e.arena[idx].time)>>overflowShift == minAbs {
				e.place(idx)
			} else {
				e.arena[idx].next = keep
				keep = idx
			}
			idx = next
		}
		e.overflow = keep
	}
}

// unlink removes an event from its level-0 slot list.
func (e *Engine) unlink(idx, slot int32) {
	head := e.heads[0][slot]
	if head == idx {
		e.heads[0][slot] = e.arena[idx].next
	} else {
		prev := head
		for e.arena[prev].next != idx {
			prev = e.arena[prev].next
		}
		e.arena[prev].next = e.arena[idx].next
	}
	if e.heads[0][slot] == nilIdx {
		e.occ[0] &^= 1 << uint(slot)
	}
}

// Step executes the next event; it reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if e.cnt == 0 {
		return false
	}
	idx := e.findMin()
	e.unlink(idx, e.minSlot)
	e.minIdx = nilIdx
	if t := tickOf(e.arena[idx].time); t > e.cur {
		e.cur = t
	}
	e.now = e.arena[idx].time
	fn := e.arena[idx].fn
	e.release(idx)
	e.cnt--
	e.done++
	e.ins.Executed.Inc()
	e.ins.QueueDepth.SetInt(e.cnt)
	fn()
	return true
}

// peekTime returns the earliest queued event's time; call only when
// Pending() > 0.
func (e *Engine) peekTime() float64 {
	return e.arena[e.findMin()].time
}

// RunUntil executes events until the clock would pass t; the clock
// finishes at exactly t.
func (e *Engine) RunUntil(t float64) {
	for e.cnt > 0 && e.peekTime() <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilCtx is RunUntil with cancellation: it checks ctx between
// events and returns ctx.Err() when the context is done, leaving the
// clock wherever the last executed event put it.
func (e *Engine) RunUntilCtx(ctx context.Context, t float64) error {
	for e.cnt > 0 && e.peekTime() <= t {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return ctx.Err()
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.cnt }

// Scheduled returns the total events ever scheduled on this engine —
// an observability counter for end-of-run summaries. It counts from
// process start, so unlike Pending it is not invariant across a
// checkpoint resume and must stay out of byte-compared outputs.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Executed returns the total events executed on this engine, with the
// same process-lifetime caveat as Scheduled.
func (e *Engine) Executed() uint64 { return e.done }
