// Package sim is a minimal discrete-event simulation engine: a clock
// and a time-ordered event queue with deterministic tie-breaking. The
// platform simulation uses it to drive trace arrivals, autoscaler
// ticks and migration cooldowns on one timeline.
package sim

import (
	"container/heap"
	"context"

	"gsight/internal/telemetry"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Engine is the simulation core. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	ins    telemetry.SimInstruments
}

// Instrument attaches a telemetry sink (Nop-safe).
func (e *Engine) Instrument(s *telemetry.Sink) { e.ins = s.Sim() }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t; times in the past run at the
// current time (immediately on the next step).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
	e.ins.Scheduled.Inc()
	e.ins.QueueDepth.SetInt(len(e.events))
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn every interval seconds, starting at now+interval,
// until fn returns false.
func (e *Engine) Every(interval float64, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
}

// Step executes the next event; it reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.time
	e.ins.Executed.Inc()
	e.ins.QueueDepth.SetInt(len(e.events))
	ev.fn()
	return true
}

// RunUntil executes events until the clock would pass t; the clock
// finishes at exactly t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilCtx is RunUntil with cancellation: it checks ctx between
// events and returns ctx.Err() when the context is done, leaving the
// clock wherever the last executed event put it.
func (e *Engine) RunUntilCtx(ctx context.Context, t float64) error {
	for len(e.events) > 0 && e.events[0].time <= t {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return ctx.Err()
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
