package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gsight/internal/metrics"
	"gsight/internal/ml"
	"gsight/internal/resources"
	"gsight/internal/telemetry"
)

// QoSKind identifies the predicted quality-of-service metric.
type QoSKind int

const (
	// IPCQoS predicts a workload's aggregate instructions-per-cycle.
	IPCQoS QoSKind = iota
	// TailLatencyQoS predicts the end-to-end 99th-percentile latency (ms).
	TailLatencyQoS
	// JCTQoS predicts an SC job's completion time (s).
	JCTQoS
	numQoSKinds
)

// String names the QoS kind.
func (k QoSKind) String() string {
	switch k {
	case IPCQoS:
		return "ipc"
	case TailLatencyQoS:
		return "p99"
	case JCTQoS:
		return "jct"
	}
	return fmt.Sprintf("QoSKind(%d)", int(k))
}

// ModelFactory builds a fresh incremental model; the default produces
// the paper's IRFR. Swapping factories yields the IKNN/ILR/ISVR/IMLP
// comparison predictors of Figures 5 and 9.
type ModelFactory func(seed uint64) ml.Incremental

// IRFRFactory builds the incremental random forest the paper selects.
// MTry 96 trades a few tenths of a percent of accuracy for roughly
// half the training time on the ~500-active-feature colocation codes.
func IRFRFactory(seed uint64) ml.Incremental {
	return ml.NewForest(ml.ForestConfig{Trees: 40, Seed: seed, Tree: ml.TreeConfig{MTry: 96}})
}

// Config parameterizes a Predictor.
type Config struct {
	Coder Coder
	// Factory builds the per-QoS models; nil means IRFRFactory.
	Factory ModelFactory
	// UpdateEvery is the observation count per incremental model
	// update (the paper updates in small batches online); <=0 means 100.
	UpdateEvery int
	Seed        uint64
	// AbsoluteTargets disables the solo-reference normalization and
	// learns raw QoS values, as the paper's model does. The default
	// (normalized) predictor learns degradation ratios, which transfer
	// across workloads of different absolute QoS; the absolute mode
	// reproduces the paper's Figure 13 behaviour, where a regime shift
	// in absolute IPC costs 43.9% error.
	AbsoluteTargets bool
}

// Observation is one labeled colocation: the workload set, which member
// is the prediction target, and its measured QoS.
type Observation struct {
	Target int
	Inputs []WorkloadInput
	Label  float64
}

// QoSPredictor is the interface shared by Gsight and the comparison
// predictors (ESP, Pythia): offline bootstrap, online prediction, and
// incremental feedback.
type QoSPredictor interface {
	TrainObservations(kind QoSKind, obs []Observation) error
	Predict(kind QoSKind, target int, ws []WorkloadInput) (float64, error)
	Observe(kind QoSKind, target int, ws []WorkloadInput, actual float64) error
	Flush(kind QoSKind) error
	Name() string
}

// Predictor is the Gsight performance predictor: solo-run profiles plus
// the partial interference code in, QoS out, improving continuously as
// observations stream in (Figure 6's loop).
type Predictor struct {
	cfg     Config
	coder   Coder
	models  [numQoSKinds]ml.Incremental
	pending [numQoSKinds]ml.Dataset
	trained [numQoSKinds]bool
	seen    [numQoSKinds]int
	// xPool recycles Dim()-sized encode buffers so the prediction hot
	// path allocates nothing. Buffers never escape: the model reads x
	// during Predict and must not retain it.
	xPool sync.Pool

	// tier0 is the cheap candidate-pruning scorer. It rides the IPC
	// training stream: every batch the forest ingests, it ingests too.
	tier0 *Tier0

	ins telemetry.PredictorInstruments
	ev  telemetry.PredictorUpdate // reusable training event
}

// Instrument attaches a telemetry sink to the predictor and its models.
// Instrumenting with telemetry.Nop leaves every output bit-identical.
func (p *Predictor) Instrument(s *telemetry.Sink) {
	p.ins = s.Predictor()
	fi := s.Forest()
	for _, m := range p.models {
		if im, ok := m.(ml.Instrumentable); ok {
			im.Instrument(fi)
		}
	}
}

// trainEvent emits a predictor_update decision event and refreshes the
// training gauges after a fit/update step of `batch` samples.
func (p *Predictor) trainEvent(kind QoSKind, phase string, batch int) {
	p.ins.Updates.Inc()
	p.ins.SamplesSeen.SetInt(p.seen[kind])
	p.ins.PendingWindow.SetInt(p.pending[kind].Len())
	if p.ins.Decisions != nil {
		p.ev = telemetry.PredictorUpdate{
			Predictor:   p.Name(),
			Kind:        kind.String(),
			Phase:       phase,
			Batch:       batch,
			SamplesSeen: p.seen[kind],
		}
		p.ins.Decisions.PredictorUpdate(&p.ev)
	}
}

// NewPredictor returns an untrained predictor.
func NewPredictor(cfg Config) *Predictor {
	if cfg.Factory == nil {
		cfg.Factory = IRFRFactory
	}
	if cfg.UpdateEvery <= 0 {
		cfg.UpdateEvery = 100
	}
	if cfg.Coder.NumServers == 0 {
		cfg.Coder = DefaultCoder()
	}
	p := &Predictor{cfg: cfg, coder: cfg.Coder, tier0: newTier0(cfg.Coder)}
	p.xPool.New = func() interface{} {
		buf := make([]float64, p.coder.Dim())
		return &buf
	}
	for k := range p.models {
		m := cfg.Factory(cfg.Seed + uint64(k)*7919)
		// Tail latency and JCT span orders of magnitude across
		// interference scenarios; learning them in log space turns
		// squared loss into (approximately) the paper's relative
		// error metric.
		if QoSKind(k) == TailLatencyQoS || QoSKind(k) == JCTQoS {
			m = ml.NewLogTarget(m)
		}
		p.models[k] = m
	}
	return p
}

// Coder exposes the feature layout (for importance mapping).
func (p *Predictor) Coder() Coder { return p.coder }

// Model returns the underlying model for a QoS kind.
func (p *Predictor) Model(kind QoSKind) ml.Incremental { return p.models[kind] }

// Tier0 returns the tier-0 candidate scorer, trained alongside the IPC
// forest. Schedulers attach it to enable top-K candidate pruning.
func (p *Predictor) Tier0() *Tier0 { return p.tier0 }

// Encode exposes the feature encoding for external tooling.
func (p *Predictor) Encode(target int, ws []WorkloadInput) ([]float64, error) {
	return p.coder.Encode(target, ws)
}

// Name identifies the predictor in experiment reports.
func (p *Predictor) Name() string { return "Gsight" }

// refFor returns the solo-run reference the model normalizes its target
// by: the learner predicts degradation relative to the solo behaviour
// already present in the input profiles, which is what lets one model
// generalize across workloads of very different absolute QoS (the
// Figure 5 transfer to an unseen workload). IPC normalizes by the
// CPU-demand-weighted solo IPC, JCT by the solo duration; tail latency
// has no solo analogue in the profiles and stays absolute (the
// LogTarget wrapper conditions its scale instead).
func (p *Predictor) refFor(kind QoSKind, target int, ws []WorkloadInput) float64 {
	if p.cfg.AbsoluteTargets {
		return 1
	}
	switch kind {
	case IPCQoS:
		w := &ws[target]
		var sum, wsum float64
		for f := range w.Profiles {
			p := &w.Profiles[f]
			cw := p.Demand[resources.CPU]
			if cw <= 0 {
				cw = 1e-6
			}
			sum += p.Metrics[metrics.IPC] * cw
			wsum += cw
		}
		if wsum > 0 && sum > 0 {
			return sum / wsum
		}
	case JCTQoS:
		if ws[target].LifetimeS > 0 {
			return ws[target].LifetimeS
		}
	}
	return 1
}

// TrainObservations encodes and fits labeled colocations — the offline
// bootstrap phase over raw observations (steps ❷-❸ in Figure 6).
func (p *Predictor) TrainObservations(kind QoSKind, obs []Observation) error {
	span := telemetry.StartSpan(p.ins.UpdateSeconds)
	var ds ml.Dataset
	for _, o := range obs {
		x, err := p.coder.Encode(o.Target, o.Inputs)
		if err != nil {
			return err
		}
		ds.Append(x, o.Label/p.refFor(kind, o.Target, o.Inputs))
	}
	if err := p.models[kind].Fit(ds.X, ds.Y); err != nil {
		return err
	}
	if kind == IPCQoS {
		p.tier0.train(ds.X, ds.Y)
	}
	p.trained[kind] = true
	p.seen[kind] = ds.Len()
	if p.ins.Enabled() {
		p.trainEvent(kind, "train", ds.Len())
	}
	span.End()
	return nil
}

// ErrNotTrained marks predictions requested from a model that has not
// been fitted for the QoS kind. Schedulers and the platform treat it
// as a signal to degrade to a capacity-based policy, not to retry.
var ErrNotTrained = errors.New("core: model not trained")

// ErrUnavailable marks a predictor that is temporarily unreachable
// (fault injection, a remote inference service being down). Like
// ErrNotTrained it calls for graceful degradation by the caller.
var ErrUnavailable = errors.New("core: predictor unavailable")

// Predict estimates ws[target]'s QoS under the colocation. Calling it
// for an untrained kind returns an error wrapping ErrNotTrained: the
// paper never predicts before the initial dataset exists.
func (p *Predictor) Predict(kind QoSKind, target int, ws []WorkloadInput) (float64, error) {
	if !p.trained[kind] {
		return 0, fmt.Errorf("%w: %v", ErrNotTrained, kind)
	}
	// Clock reads are gated on Enabled so the uninstrumented hot path
	// never touches the time source.
	var t0 time.Time
	if p.ins.Enabled() {
		t0 = time.Now()
	}
	xp := p.xPool.Get().(*[]float64)
	x := *xp
	if err := p.coder.EncodeInto(x, target, ws); err != nil {
		p.xPool.Put(xp)
		return 0, err
	}
	if p.ins.Enabled() {
		t1 := time.Now()
		p.ins.EncodeSeconds.Observe(t1.Sub(t0).Seconds())
		t0 = t1
	}
	v := p.models[kind].Predict(x)
	p.xPool.Put(xp)
	if p.ins.Enabled() {
		p.ins.InferSeconds.Observe(time.Since(t0).Seconds())
		p.ins.Predicts.Inc()
	}
	return v * p.refFor(kind, target, ws), nil
}

// Observe feeds one post-deployment measurement back into the model
// (steps ❾-❿ in Figure 6). Updates are applied in batches of
// UpdateEvery samples; Flush forces an early update.
func (p *Predictor) Observe(kind QoSKind, target int, ws []WorkloadInput, actual float64) error {
	x, err := p.coder.Encode(target, ws)
	if err != nil {
		return err
	}
	p.pending[kind].Append(x, actual/p.refFor(kind, target, ws))
	p.ins.Observations.Inc()
	p.ins.PendingWindow.SetInt(p.pending[kind].Len())
	if p.pending[kind].Len() >= p.cfg.UpdateEvery {
		return p.Flush(kind)
	}
	return nil
}

// Flush applies any buffered observations for kind immediately.
func (p *Predictor) Flush(kind QoSKind) error {
	ds := &p.pending[kind]
	if ds.Len() == 0 {
		return nil
	}
	span := telemetry.StartSpan(p.ins.UpdateSeconds)
	batch := ds.Len()
	phase := "update"
	var err error
	if !p.trained[kind] {
		phase = "train"
		err = p.models[kind].Fit(ds.X, ds.Y)
		p.trained[kind] = err == nil
	} else {
		err = p.models[kind].Update(ds.X, ds.Y)
	}
	if err != nil {
		return err
	}
	if kind == IPCQoS {
		p.tier0.absorb(ds.X, ds.Y)
	}
	p.seen[kind] += batch
	// Keep the pending buffer's capacity: the update cadence makes this
	// a steady-state hot path, and the rows themselves were handed to
	// the model (never reused here).
	ds.Reset()
	if p.ins.Enabled() {
		p.trainEvent(kind, phase, batch)
	}
	span.End()
	return nil
}

// SamplesSeen reports how many observations have been folded into the
// model for kind (the x-axis of Figure 10).
func (p *Predictor) SamplesSeen(kind QoSKind) int { return p.seen[kind] }

// MetricImportance aggregates the IRFR impurity importances over every
// U-matrix position of each selected metric, yielding the 16-bar
// Figure 8 profile. It returns nil when the model is not a forest or
// not yet trained.
func (p *Predictor) MetricImportance(kind QoSKind) []float64 {
	model := p.models[kind]
	if lt, ok := model.(*ml.LogTarget); ok {
		model = lt.Inner
	}
	forest, ok := model.(*ml.Forest)
	if !ok || !p.trained[kind] {
		return nil
	}
	imp := forest.Importance()
	if imp == nil {
		return nil
	}
	out := make([]float64, metrics.NumSelected)
	for slot := 0; slot <= p.coder.MaxWorkloads; slot++ { // incl. aggregate block
		for server := 0; server < p.coder.NumServers; server++ {
			for col := 0; col < metrics.NumSelected; col++ {
				idx := p.coder.UFeatureIndex(slot, server, col)
				if idx < len(imp) {
					out[col] += imp[idx]
				}
			}
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}
