package core

import (
	"math"
	"testing"

	"gsight/internal/metrics"
	"gsight/internal/ml"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

var spec = resources.DefaultServerSpec("test")

func lsInput(w *workload.Workload, placement []int, qpsFrac float64) WorkloadInput {
	ps := profile.WorkloadProfiles(w, spec, nil)
	return WorkloadInput{
		Name:      w.Name,
		Class:     w.Class,
		Profiles:  ps,
		Placement: placement,
		QPSFrac:   qpsFrac,
	}
}

func scInput(w *workload.Workload, server int, delay float64) WorkloadInput {
	ps := profile.WorkloadProfiles(w, spec, nil)
	placement := make([]int, len(w.Functions))
	for i := range placement {
		placement[i] = server
	}
	return WorkloadInput{
		Name:        w.Name,
		Class:       w.Class,
		Profiles:    ps,
		Placement:   placement,
		StartDelayS: delay,
		LifetimeS:   w.SoloDurationS,
	}
}

func snPlacement() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7, 0} }

func TestCoderDim(t *testing.T) {
	c := DefaultCoder()
	// 32(n+1)S + 2n with the aggregate block: 32*11*8 + 20.
	if got := c.Dim(); got != 32*11*8+20 {
		t.Fatalf("Dim = %d", got)
	}
	small := Coder{NumServers: 2, MaxWorkloads: 3}
	if got := small.Dim(); got != 32*4*2+6 {
		t.Fatalf("small Dim = %d", got)
	}
}

func TestEncodeBasics(t *testing.T) {
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	mm := scInput(workload.MatMul(), 0, 30)
	x, err := c.Encode(0, []WorkloadInput{sn, mm})
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != c.Dim() {
		t.Fatalf("feature length %d != Dim %d", len(x), c.Dim())
	}
	nonzero := 0
	for _, v := range x {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 50 {
		t.Fatalf("suspiciously sparse encoding: %d nonzero", nonzero)
	}
	// Unused slots (2..9) must be all zero.
	for slot := 2; slot < c.MaxWorkloads; slot++ {
		for srv := 0; srv < c.NumServers; srv++ {
			for col := 0; col < metrics.NumSelected; col++ {
				if x[c.UFeatureIndex(slot, srv, col)] != 0 {
					t.Fatalf("padding slot %d not zero", slot)
				}
			}
		}
	}
}

func TestEncodeTargetInSlot0(t *testing.T) {
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	mm := scInput(workload.MatMul(), 0, 30)
	x0, err := c.Encode(0, []WorkloadInput{sn, mm})
	if err != nil {
		t.Fatal(err)
	}
	x1, err := c.Encode(1, []WorkloadInput{sn, mm})
	if err != nil {
		t.Fatal(err)
	}
	// Different targets must produce different codes (slot 0 differs).
	same := true
	for i := range x0 {
		if x0[i] != x1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different targets encoded identically")
	}
}

func TestEncodeCorunnerPermutationInvariance(t *testing.T) {
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	mm := scInput(workload.MatMul(), 0, 30)
	dd := scInput(workload.DD(), 3, 60)
	a, err := c.Encode(0, []WorkloadInput{sn, mm, dd})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encode(0, []WorkloadInput{sn, dd, mm})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corunner order changed the code at feature %d", i)
		}
	}
}

func TestEncodeServerRelabelInvariance(t *testing.T) {
	// Renaming physical servers must not change the code: servers are
	// homogeneous and rows are assigned canonically.
	c := DefaultCoder()
	a, err := c.Encode(0, []WorkloadInput{
		lsInput(workload.ECommerce(), []int{0, 1, 2, 0, 1, 2}, 0.4),
		scInput(workload.MatMul(), 1, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encode(0, []WorkloadInput{
		lsInput(workload.ECommerce(), []int{5, 7, 3, 5, 7, 3}, 0.4),
		scInput(workload.MatMul(), 7, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("server relabeling changed the code at feature %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEncodeColocationMatters(t *testing.T) {
	// The same workloads on the same servers vs different servers must
	// encode differently — that is the spatial overlap code.
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	same, err := c.Encode(0, []WorkloadInput{sn, scInput(workload.MatMul(), 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	apart, err := c.Encode(0, []WorkloadInput{sn, scInput(workload.MatMul(), 5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range same {
		if same[i] != apart[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("placement change did not alter the code")
	}
}

func TestTemporalCodingRules(t *testing.T) {
	c := DefaultCoder()
	dOff := (c.MaxWorkloads + 1) * 2 * c.NumServers * metrics.NumSelected
	tOff := dOff + c.MaxWorkloads

	// LS+LS: D = T = 0 everywhere.
	x, err := c.Encode(0, []WorkloadInput{
		lsInput(workload.SocialNetwork(), snPlacement(), 0.5),
		lsInput(workload.ECommerce(), []int{0, 1, 2, 3, 4, 5}, 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := dOff; i < tOff+c.MaxWorkloads; i++ {
		if x[i] != 0 {
			t.Fatalf("LS+LS should have zero D/T, got x[%d]=%v", i, x[i])
		}
	}

	// SC+SC: delays relative to the first SC arrival; lifetimes set.
	x, err = c.Encode(0, []WorkloadInput{
		scInput(workload.MatMul(), 0, 100),
		scInput(workload.DD(), 1, 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x[dOff+0]; got != 60 {
		t.Fatalf("target delay = %v, want 60 (100 - first arrival 40)", got)
	}
	if got := x[dOff+1]; got != 0 {
		t.Fatalf("first SC delay = %v, want 0", got)
	}
	if x[tOff+0] != 180 || x[tOff+1] != 150 {
		t.Fatalf("lifetimes = %v, %v; want 180, 150", x[tOff+0], x[tOff+1])
	}

	// Mixed: the LS slot keeps D = T = 0.
	x, err = c.Encode(0, []WorkloadInput{
		lsInput(workload.SocialNetwork(), snPlacement(), 0.5),
		scInput(workload.MatMul(), 0, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if x[dOff+0] != 0 || x[tOff+0] != 0 {
		t.Fatal("LS target must carry D = T = 0")
	}
	if x[dOff+1] != 0 {
		t.Fatalf("single SC delay should be 0 (relative to itself), got %v", x[dOff+1])
	}
	if x[tOff+1] != 180 {
		t.Fatalf("SC lifetime = %v, want 180", x[tOff+1])
	}
}

func TestEncodeErrors(t *testing.T) {
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	if _, err := c.Encode(5, []WorkloadInput{sn}); err == nil {
		t.Fatal("out-of-range target must error")
	}
	bad := sn
	bad.Placement = []int{0}
	if _, err := c.Encode(0, []WorkloadInput{bad}); err == nil {
		t.Fatal("profile/placement mismatch must error")
	}
	// More distinct servers than rows must error.
	small := Coder{NumServers: 2, MaxWorkloads: 3}
	three := lsInput(workload.MLServing(), []int{0, 1, 2}, 0.5)
	if _, err := small.Encode(0, []WorkloadInput{three}); err == nil {
		t.Fatal("too many servers must error")
	}
}

func TestClassify(t *testing.T) {
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	ec := lsInput(workload.ECommerce(), []int{0, 1, 2, 3, 4, 5}, 0.5)
	mm := scInput(workload.MatMul(), 0, 0)
	bg := scInput(workload.IoTCollector(), 0, 0)
	cases := []struct {
		ws   []WorkloadInput
		want ColocationKind
	}{
		{[]WorkloadInput{sn, ec}, LSLS},
		{[]WorkloadInput{sn, mm}, LSSC},
		{[]WorkloadInput{sn, bg}, LSSC},
		{[]WorkloadInput{mm, mm}, SCSC},
		{[]WorkloadInput{mm, bg}, SCSC},
		{[]WorkloadInput{bg, bg}, BGBG},
	}
	for _, tc := range cases {
		if got := Classify(tc.ws); got != tc.want {
			t.Errorf("Classify = %v, want %v", got, tc.want)
		}
	}
	for _, k := range []ColocationKind{LSLS, LSSC, SCSC, BGBG} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestPredictorLifecycle(t *testing.T) {
	p := NewPredictor(Config{
		Coder:       Coder{NumServers: 4, MaxWorkloads: 3},
		Factory:     func(seed uint64) ml.Incremental { return ml.NewForest(ml.ForestConfig{Trees: 6, Seed: seed}) },
		UpdateEvery: 10,
		Seed:        1,
	})
	if _, err := p.Predict(IPCQoS, 0, nil); err == nil {
		t.Fatal("untrained predict must error")
	}

	// Build a toy dataset: IPC of matmul beside dd at varying delay.
	mm := scInput(workload.MatMul(), 0, 0)
	r := rng.New(2)
	var obs []Observation
	for i := 0; i < 60; i++ {
		dd := scInput(workload.DD(), i%2, r.Range(0, 100))
		label := 1.9 - 0.3*float64(i%2) + 0.001*dd.StartDelayS
		obs = append(obs, Observation{Target: 0, Inputs: []WorkloadInput{mm, dd}, Label: label})
	}
	if err := p.TrainObservations(IPCQoS, obs); err != nil {
		t.Fatal(err)
	}
	if p.SamplesSeen(IPCQoS) != 60 {
		t.Fatalf("samples seen = %d", p.SamplesSeen(IPCQoS))
	}
	dd := scInput(workload.DD(), 0, 50)
	got, err := p.Predict(IPCQoS, 0, []WorkloadInput{mm, dd})
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.0 || got > 2.5 {
		t.Fatalf("prediction %v out of plausible range", got)
	}

	// Observe drips samples in; the 10th triggers an update.
	for i := 0; i < 10; i++ {
		if err := p.Observe(IPCQoS, 0, []WorkloadInput{mm, dd}, 1.8); err != nil {
			t.Fatal(err)
		}
	}
	if p.SamplesSeen(IPCQoS) != 70 {
		t.Fatalf("after observe: samples = %d, want 70", p.SamplesSeen(IPCQoS))
	}
	if err := p.Flush(IPCQoS); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorFlushBeforeTrain(t *testing.T) {
	p := NewPredictor(Config{
		Coder:       Coder{NumServers: 4, MaxWorkloads: 3},
		Factory:     func(seed uint64) ml.Incremental { return ml.NewForest(ml.ForestConfig{Trees: 4, Seed: seed}) },
		UpdateEvery: 1000,
	})
	mm := scInput(workload.MatMul(), 0, 0)
	dd := scInput(workload.DD(), 0, 10)
	for i := 0; i < 20; i++ {
		if err := p.Observe(JCTQoS, 0, []WorkloadInput{mm, dd}, 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(JCTQoS); err != nil {
		t.Fatal(err)
	}
	// Flush on an empty buffer is a no-op.
	if err := p.Flush(JCTQoS); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(JCTQoS, 0, []WorkloadInput{mm, dd})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-200) > 40 {
		t.Fatalf("prediction %v, want ~200", got)
	}
}

func TestMetricImportance(t *testing.T) {
	p := NewPredictor(Config{
		Coder:       Coder{NumServers: 4, MaxWorkloads: 3},
		Factory:     func(seed uint64) ml.Incremental { return ml.NewForest(ml.ForestConfig{Trees: 8, Seed: seed}) },
		UpdateEvery: 10,
	})
	if p.MetricImportance(IPCQoS) != nil {
		t.Fatal("untrained importance should be nil")
	}
	mm := scInput(workload.MatMul(), 0, 0)
	r := rng.New(3)
	var obs []Observation
	pool := []*workload.Workload{workload.DD(), workload.Iperf(), workload.VideoProcessing()}
	for i := 0; i < 120; i++ {
		co := scInput(pool[i%3], i%2, r.Range(0, 100))
		obs = append(obs, Observation{
			Target: 0,
			Inputs: []WorkloadInput{mm, co},
			Label:  1.9 - 0.2*float64(i%3) - 0.2*float64(i%2),
		})
	}
	if err := p.TrainObservations(IPCQoS, obs); err != nil {
		t.Fatal(err)
	}
	imp := p.MetricImportance(IPCQoS)
	if len(imp) != metrics.NumSelected {
		t.Fatalf("importance length = %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
}

func TestQoSKindString(t *testing.T) {
	if IPCQoS.String() != "ipc" || TailLatencyQoS.String() != "p99" || JCTQoS.String() != "jct" {
		t.Fatal("QoS kind names wrong")
	}
}
