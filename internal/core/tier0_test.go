package core

import (
	"encoding/json"
	"testing"

	"gsight/internal/profile"
	"gsight/internal/workload"
)

// tier0Obs drives one IPC observation through a predictor, same shape
// as the checkpoint tests use.
func tier0Obs(t *testing.T, p *Predictor, i int) {
	t.Helper()
	mm := scInput(workload.MatMul(), 0, 0)
	dd := scInput(workload.DD(), i%2, float64(i%7)*10)
	if err := p.Observe(IPCQoS, 0, []WorkloadInput{mm, dd}, 1.9-0.01*float64(i%5)); err != nil {
		t.Fatal(err)
	}
}

// TestTier0TrainsWithPredictor: the tier-0 scorer must ingest the same
// observation stream the forest does, bump its generation on every
// flush, and converge to a usable fit.
func TestTier0TrainsWithPredictor(t *testing.T) {
	p := ckptPredictor(3)
	t0 := p.Tier0()
	if t0 == nil {
		t.Fatal("predictor has no tier-0 scorer")
	}
	if t0.Ready() || t0.Gen() != 0 {
		t.Fatal("fresh scorer must be unready at generation 0")
	}
	gen := t0.Gen()
	for i := 0; i < 40; i++ {
		tier0Obs(t, p, i)
	}
	if t0.Gen() <= gen {
		t.Fatalf("generation did not advance past %d after 40 observations", gen)
	}
	if !t0.Ready() {
		t.Fatal("scorer not trained after 40 IPC observations")
	}
	mix, ref := Tier0TargetStats(scInput(workload.MatMul(), 0, 0).Profiles)
	if ref <= 0 {
		t.Fatalf("reference IPC %v, want > 0", ref)
	}
	if s := t0.Score(&mix, 2.0); s == 0 {
		t.Fatal("trained scorer returned the unready sentinel 0")
	}
}

// TestTier0ScoreLoadMonotonicAfterTraining: sanity-check the learned
// direction — when the observation stream shows IPC degrading with
// co-located CPU, a loaded server must not outscore an idle one.
func TestTier0ScoreLoadMonotonicAfterTraining(t *testing.T) {
	p := ckptPredictor(3)
	mm := scInput(workload.MatMul(), 0, 0)
	for i := 0; i < 60; i++ {
		// Alternate one and two corunners so the load coefficient is
		// identifiable; the label drops as load rises.
		dd := scInput(workload.DD(), 0, float64(i%7)*10)
		inputs := []WorkloadInput{mm, dd}
		label := 1.9 - 0.01*float64(i%5)
		if i%2 == 1 {
			inputs = append(inputs, scInput(workload.FloatOp(), 0, float64(i%3)*5))
			label = 1.4 - 0.01*float64(i%5)
		}
		if err := p.Observe(IPCQoS, 0, inputs, label); err != nil {
			t.Fatal(err)
		}
	}
	t0 := p.Tier0()
	if !t0.Ready() {
		t.Fatal("scorer not trained after 60 IPC observations")
	}
	mix, _ := Tier0TargetStats(mm.Profiles)
	if idle, busy := t0.Score(&mix, 0), t0.Score(&mix, 8); busy >= idle {
		t.Fatalf("score at 8 corunner CPUs (%v) exceeds idle score (%v)", busy, idle)
	}
}

// TestPredictorCheckpointTier0RoundTrip: tier-0 state rides inside the
// predictor checkpoint, and a restored scorer must score and keep
// evolving bit-identically to the original.
func TestPredictorCheckpointTier0RoundTrip(t *testing.T) {
	a := ckptPredictor(5)
	for i := 0; i < 24; i++ {
		tier0Obs(t, a, i)
	}
	raw, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	b := ckptPredictor(5)
	if err := b.RestoreCheckpoint(raw); err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Tier0(), b.Tier0()
	if tb.Gen() != ta.Gen() {
		t.Fatalf("restored generation %d, want %d", tb.Gen(), ta.Gen())
	}
	if tb.Ready() != ta.Ready() {
		t.Fatalf("restored readiness %v, want %v", tb.Ready(), ta.Ready())
	}
	mix, _ := Tier0TargetStats(scInput(workload.DD(), 0, 0).Profiles)
	for _, load := range []float64{0, 1.5, 6} {
		if sa, sb := ta.Score(&mix, load), tb.Score(&mix, load); sa != sb {
			t.Fatalf("restored score at load %v diverged: %v != %v", load, sb, sa)
		}
	}
	// Continue both through more flushes; scores must stay bit-identical.
	for i := 24; i < 44; i++ {
		tier0Obs(t, a, i)
		tier0Obs(t, b, i)
	}
	if tb.Gen() != ta.Gen() {
		t.Fatalf("post-restore generations diverged: %d != %d", tb.Gen(), ta.Gen())
	}
	if sa, sb := ta.Score(&mix, 3), tb.Score(&mix, 3); sa != sb {
		t.Fatalf("post-restore scores diverged: %v != %v", sb, sa)
	}
}

// TestPredictorRestoreWithoutTier0Resets: checkpoints written before
// the two-tier path existed restore cleanly with an empty scorer.
func TestPredictorRestoreWithoutTier0Resets(t *testing.T) {
	a := ckptPredictor(5)
	for i := 0; i < 24; i++ {
		tier0Obs(t, a, i)
	}
	raw, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	delete(st, "tier0")
	legacy, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b := ckptPredictor(5)
	for i := 0; i < 24; i++ {
		tier0Obs(t, b, i) // dirty the scorer first; restore must clear it
	}
	if err := b.RestoreCheckpoint(legacy); err != nil {
		t.Fatal(err)
	}
	if tb := b.Tier0(); tb.Ready() || tb.Gen() != 0 {
		t.Fatalf("legacy checkpoint left scorer gen=%d ready=%v, want empty", tb.Gen(), tb.Ready())
	}
}

// TestTier0TargetStatsPure: target stats must ignore everything but the
// profiles so cached per-archetype entries survive crash/resume.
func TestTier0TargetStatsPure(t *testing.T) {
	ps := profile.WorkloadProfiles(workload.MatMul(), spec, nil)
	m1, r1 := Tier0TargetStats(ps)
	m2, r2 := Tier0TargetStats(ps)
	if m1 != m2 || r1 != r2 {
		t.Fatal("Tier0TargetStats is not deterministic")
	}
}
