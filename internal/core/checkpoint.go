package core

import (
	"encoding/json"
	"fmt"
	"math"

	"gsight/internal/ml"
)

// Checkpointable is implemented by predictors whose full online-learning
// state — models, training windows, pending observation buffers — can be
// snapshotted and restored for crash recovery. The platform requires it
// when checkpointing is enabled with an attached predictor: resuming
// without the learner's state would silently fork the learning stream.
type Checkpointable interface {
	// CheckpointState serializes the predictor's live state.
	CheckpointState() (json.RawMessage, error)
	// RestoreCheckpoint replaces the predictor's live state with a
	// snapshot produced by CheckpointState on an identically-configured
	// predictor.
	RestoreCheckpoint(json.RawMessage) error
}

// predictorState is the Gsight predictor's checkpoint schema. The
// tier-0 scorer state is optional for backward compatibility: snapshots
// written before the two-tier path restore with a reset scorer, which
// only matters if the resumed run also enables pruning.
type predictorState struct {
	Version int                  `json:"version"`
	Kinds   []predictorKindState `json:"kinds"`
	Tier0   *tier0State          `json:"tier0,omitempty"`
}

// tier0State carries the tier-0 scorer across a crash: the ridge
// accumulators verbatim (rebuilding them would change float
// accumulation order) plus the ingest generation, so scheduler-side
// score caches invalidate at exactly the same points after resume.
type tier0State struct {
	Gen   uint64        `json:"gen"`
	Ridge ml.RidgeState `json:"ridge"`
}

type predictorKindState struct {
	Trained  bool           `json:"trained"`
	Seen     int            `json:"seen"`
	Forest   ml.ForestState `json:"forest"`
	PendingX [][]float64    `json:"pending_x,omitempty"`
	PendingY []float64      `json:"pending_y,omitempty"`
}

// forestOf unwraps a QoS model to its forest, the only model family the
// checkpoint schema covers (the paper's IRFR and its log-space wrap).
func forestOf(m ml.Incremental) (*ml.Forest, error) {
	if lt, ok := m.(*ml.LogTarget); ok {
		m = lt.Inner
	}
	f, ok := m.(*ml.Forest)
	if !ok {
		return nil, fmt.Errorf("core: model %T does not support checkpointing", m)
	}
	return f, nil
}

// CheckpointState snapshots the predictor: per-QoS forest state (trees,
// window, RNG cursor) plus the pending observation buffer and training
// counters. The log-space wrapping of tail-latency and JCT models is
// structural (rebuilt by NewPredictor), so only the inner forests are
// serialized.
func (p *Predictor) CheckpointState() (json.RawMessage, error) {
	st := predictorState{Version: 1}
	for k := range p.models {
		f, err := forestOf(p.models[k])
		if err != nil {
			return nil, fmt.Errorf("%v kind: %w", QoSKind(k), err)
		}
		ks := predictorKindState{
			Trained: p.trained[k],
			Seen:    p.seen[k],
			Forest:  f.ExportState(),
		}
		if n := p.pending[k].Len(); n > 0 {
			ks.PendingX = p.pending[k].X
			ks.PendingY = p.pending[k].Y
		}
		st.Kinds = append(st.Kinds, ks)
	}
	st.Tier0 = &tier0State{Gen: p.tier0.gen, Ridge: p.tier0.ridge.ExportState()}
	return json.Marshal(st)
}

// RestoreCheckpoint restores a CheckpointState snapshot into this
// predictor's existing models, validating dimensions and values so a
// corrupt snapshot is rejected with an error instead of applied.
func (p *Predictor) RestoreCheckpoint(raw json.RawMessage) error {
	var st predictorState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: predictor checkpoint: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("core: unsupported predictor checkpoint version %d", st.Version)
	}
	if len(st.Kinds) != int(numQoSKinds) {
		return fmt.Errorf("core: predictor checkpoint has %d kinds, want %d", len(st.Kinds), int(numQoSKinds))
	}
	dim := p.coder.Dim()
	for k, ks := range st.Kinds {
		if len(ks.PendingX) != len(ks.PendingY) {
			return fmt.Errorf("core: %v pending X/Y length mismatch (%d vs %d)", QoSKind(k), len(ks.PendingX), len(ks.PendingY))
		}
		if ks.Seen < 0 {
			return fmt.Errorf("core: %v negative sample count %d", QoSKind(k), ks.Seen)
		}
		for i, row := range ks.PendingX {
			if len(row) != dim {
				return fmt.Errorf("core: %v pending row %d has %d features, coder dim is %d", QoSKind(k), i, len(row), dim)
			}
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("core: %v pending row %d has non-finite features", QoSKind(k), i)
				}
			}
			if math.IsNaN(ks.PendingY[i]) || math.IsInf(ks.PendingY[i], 0) {
				return fmt.Errorf("core: %v pending label %d non-finite", QoSKind(k), i)
			}
		}
	}
	// Pending buffers validated up front; forest states validate inside
	// RestoreState before mutating. A restore error aborts the caller's
	// resume, so a partially-applied predictor is never used.
	for k, ks := range st.Kinds {
		f, err := forestOf(p.models[k])
		if err != nil {
			return fmt.Errorf("%v kind: %w", QoSKind(k), err)
		}
		if err := f.RestoreState(ks.Forest); err != nil {
			return fmt.Errorf("core: %v kind: %w", QoSKind(k), err)
		}
		p.trained[k] = ks.Trained
		p.seen[k] = ks.Seen
		p.pending[k].Reset()
		for i := range ks.PendingY {
			p.pending[k].Append(ks.PendingX[i], ks.PendingY[i])
		}
	}
	if st.Tier0 != nil {
		if err := p.tier0.ridge.RestoreState(st.Tier0.Ridge); err != nil {
			return fmt.Errorf("core: tier0: %w", err)
		}
		p.tier0.gen = st.Tier0.Gen
	} else {
		p.tier0.ridge.Reset()
		p.tier0.gen = 0
	}
	return nil
}

var _ Checkpointable = (*Predictor)(nil)
