package core

import (
	"fmt"
	"sync"
	"time"

	"gsight/internal/ml"
)

// Query is one prediction request in a batch: which member of Inputs is
// the target workload. PredictBatch only reads Inputs for the duration
// of the call; callers may reuse the backing slices afterwards.
type Query struct {
	Target int
	Inputs []WorkloadInput
}

// batchScratch holds the reusable buffers of one PredictBatch call: a
// flat float backing array, row views into it, and the raw model
// outputs. Rows only ever point into flat, so pooling retains no caller
// data.
type batchScratch struct {
	flat []float64
	X    [][]float64
	out  []float64
}

var batchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

// PredictBatch estimates the QoS of many colocations at once: every
// query is encoded into one pooled backing array and the model runs its
// batched inference path (ml.BatchRegressor) when it has one. Results
// are bit-identical to calling Predict per query — batching changes
// memory traffic, never arithmetic.
func (p *Predictor) PredictBatch(kind QoSKind, queries []Query) ([]float64, error) {
	out := make([]float64, len(queries))
	if err := p.PredictBatchInto(kind, queries, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto is PredictBatch writing into a caller-owned result
// slice (len(out) must equal len(queries)), for hot paths that reuse
// their own scratch.
func (p *Predictor) PredictBatchInto(kind QoSKind, queries []Query, out []float64) error {
	if !p.trained[kind] {
		return fmt.Errorf("%w: %v", ErrNotTrained, kind)
	}
	if len(out) != len(queries) {
		return fmt.Errorf("core: PredictBatchInto out length %d != %d queries", len(out), len(queries))
	}
	n := len(queries)
	if n == 0 {
		return nil
	}
	var t0 time.Time
	if p.ins.Enabled() {
		t0 = time.Now()
	}
	d := p.coder.Dim()
	sc := batchPool.Get().(*batchScratch)
	if cap(sc.flat) < n*d {
		sc.flat = make([]float64, n*d)
	}
	sc.flat = sc.flat[:n*d]
	if cap(sc.X) < n {
		sc.X = make([][]float64, n)
	}
	sc.X = sc.X[:n]
	for i := range sc.X {
		sc.X[i] = sc.flat[i*d : (i+1)*d]
	}
	for i, q := range queries {
		if err := p.coder.EncodeInto(sc.X[i], q.Target, q.Inputs); err != nil {
			batchPool.Put(sc)
			return err
		}
	}
	if p.ins.Enabled() {
		t1 := time.Now()
		p.ins.EncodeSeconds.Observe(t1.Sub(t0).Seconds())
		t0 = t1
	}
	if cap(sc.out) < n {
		sc.out = make([]float64, n)
	}
	sc.out = sc.out[:n]
	model := p.models[kind]
	if b, ok := model.(ml.BatchRegressor); ok {
		b.PredictBatchInto(sc.X, sc.out)
	} else {
		for i := range sc.X {
			sc.out[i] = model.Predict(sc.X[i])
		}
	}
	for i, q := range queries {
		out[i] = sc.out[i] * p.refFor(kind, q.Target, q.Inputs)
	}
	batchPool.Put(sc)
	if p.ins.Enabled() {
		p.ins.InferSeconds.Observe(time.Since(t0).Seconds())
		p.ins.Batches.Inc()
		p.ins.BatchQueries.Add(uint64(n))
		p.ins.BatchSize.Observe(float64(n))
	}
	return nil
}
