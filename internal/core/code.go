// Package core implements Gsight, the paper's contribution: a QoS
// predictor for colocated serverless workloads under partial
// interference (§3). It encodes each colocation as the paper's
// spatial-temporal interference code — per-workload resource-allocation
// (R) and utilization (U) matrices over the servers, a start-delay
// vector D and a lifetime vector T — and feeds the code plus solo-run
// function profiles to an incremental learning model (IRFR by default).
package core

import (
	"errors"
	"fmt"
	"sync"

	"gsight/internal/metrics"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

// BaseName splits a unique invocation run name ("matmul#17") back to
// its archetype — the pool workload the instance was stamped from.
// Names without a run suffix come back unchanged with ok=false; the
// platform and the observability layer share this convention when
// keying per-archetype statistics.
func BaseName(name string) (string, bool) {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '#' {
			return name[:i], true
		}
	}
	return name, false
}

// WorkloadInput is everything the predictor may legally see about one
// deployed workload: its class, its solo-run profiles, where its
// functions are placed, and its load/timing. It never includes
// ground-truth model internals.
type WorkloadInput struct {
	Name  string
	Class workload.Class
	// Profiles holds one solo-run profile per function.
	Profiles []profile.Profile
	// Placement[f] is the server hosting function f.
	Placement []int
	// Replicas[f] is the instance count of function f (nil = all 1).
	Replicas []int
	// QPSFrac is the LS load relative to the profiling reference
	// (QPS / MaxQPS); utilization-like profile metrics scale with it.
	QPSFrac float64
	// StartDelayS is the workload's start offset (SC/BG).
	StartDelayS float64
	// LifetimeS is the solo-run duration of an SC/BG workload; 0 for LS.
	LifetimeS float64
}

func (w *WorkloadInput) replicas(f int) float64 {
	if w.Replicas == nil {
		return 1
	}
	return float64(w.Replicas[f])
}

// Coder flattens colocations into the paper's 32nS+2n feature layout:
// for each of n workload slots, an R matrix (S servers x 16 columns)
// and a U matrix (S x 16), then the n-dimensional D and T vectors.
// Slot 0 always holds the prediction target.
//
// One refinement over the paper's formulation: an extra aggregate block
// (one more R/U matrix pair) holds the per-server SUM over all
// corunner slots. Contention is driven by total pressure per server,
// and giving the model that marginal directly spares it assembling the
// same quantity from up to nine separate slots — the information
// content is identical.
type Coder struct {
	NumServers   int // S
	MaxWorkloads int // n (the paper fixes n = 10)
}

// DefaultCoder matches the paper's experiment configuration: 8 servers,
// up to 10 colocated workloads.
func DefaultCoder() Coder { return Coder{NumServers: 8, MaxWorkloads: 10} }

// Dim returns the feature dimensionality: 32nS + 2n plus the 32S
// aggregate-corunner block.
func (c Coder) Dim() int {
	return 32*(c.MaxWorkloads+1)*c.NumServers + 2*c.MaxWorkloads
}

// aggSlot is the pseudo-slot index of the aggregate corunner block.
func (c Coder) aggSlot() int { return c.MaxWorkloads }

// blockSize is the per-workload feature count: R (S x 16) + U (S x 16).
func (c Coder) blockSize() int { return 2 * c.NumServers * metrics.NumSelected }

// UFeatureIndex returns the feature position of metric column m of
// workload slot i on server l in the U matrix — used to map forest
// importances back onto the 16 metrics (Figure 8).
func (c Coder) UFeatureIndex(slot, server, col int) int {
	return slot*c.blockSize() + c.NumServers*metrics.NumSelected + server*metrics.NumSelected + col
}

// rFeatureIndex is the R-matrix analogue.
func (c Coder) rFeatureIndex(slot, server, col int) int {
	return slot*c.blockSize() + server*metrics.NumSelected + col
}

// ErrTooManyServers is returned by Encode when the colocation touches
// more distinct servers than the coder has spatial rows — the paper's
// §6.4 scaling limit ("if a workflow ... spans over hundreds or
// thousands of servers, Gsight may not scale up well").
var ErrTooManyServers = errors.New("core: colocation spans more servers than the code has rows")

// ColocationKind classifies a colocation per §3.3's model forms.
type ColocationKind int

const (
	// LSLS: only latency-sensitive workloads; D = T = 0 and QPS is the
	// interference driver.
	LSLS ColocationKind = iota
	// LSSC: LS mixed with SC/BG; LS entries carry D = T = 0, SC/BG
	// delays are relative to the first SC/BG arrival.
	LSSC
	// SCSC: only SC/BG; lifetimes are non-zero.
	SCSC
	// BGBG: only background jobs; the paper never invokes the
	// predictor here (lenient requirements).
	BGBG
)

// String names the colocation kind as the paper does.
func (k ColocationKind) String() string {
	switch k {
	case LSLS:
		return "LS+LS"
	case LSSC:
		return "LS+SC/BG"
	case SCSC:
		return "SC+SC/BG"
	case BGBG:
		return "BG+BG"
	}
	return fmt.Sprintf("ColocationKind(%d)", int(k))
}

// Classify returns the colocation kind of a workload set.
func Classify(ws []WorkloadInput) ColocationKind {
	hasLS, hasSC, hasBG := false, false, false
	for _, w := range ws {
		switch w.Class {
		case workload.LS:
			hasLS = true
		case workload.SC:
			hasSC = true
		case workload.BG:
			hasBG = true
		}
	}
	switch {
	case hasLS && (hasSC || hasBG):
		return LSSC
	case hasLS:
		return LSLS
	case hasSC:
		return SCSC
	default:
		return BGBG
	}
}

// rowScratch accumulates one "virtual larger function" (§3.3): the
// metrics, CPU-demand weights and summed allocation of a workload's
// functions that share a server row.
type rowScratch struct {
	vs      []metrics.Vector
	weights []float64
	alloc   resources.Vector
	used    bool
}

// codeScratch holds the reusable buffers EncodeInto needs, so that a
// steady-state encode performs no allocation. Instances live in
// encodePool; they are never retained across calls and hold no pointers
// into caller data after release().
type codeScratch struct {
	ordered   []WorkloadInput
	serverIDs []int        // serverIDs[row] = physical server id (first-use order)
	rows      []rowScratch // per-row slot grouping, indexed by row
	touched   []int        // rows used by the current slot
}

var encodePool = sync.Pool{New: func() interface{} { return new(codeScratch) }}

// rowOf returns the canonical row of a physical server id, assigning
// the next row on first use. Colocations touch at most a handful of
// servers, so a linear scan beats a map — no hashing, no allocation.
func (sc *codeScratch) rowOf(server int) int {
	for row, id := range sc.serverIDs {
		if id == server {
			return row
		}
	}
	sc.serverIDs = append(sc.serverIDs, server)
	return len(sc.serverIDs) - 1
}

// release drops references to caller-owned data so pooled scratch never
// pins workload inputs or profiles, and clears any rows left dirty by
// an error return mid-encode.
func (sc *codeScratch) release() {
	for i := range sc.ordered {
		sc.ordered[i] = WorkloadInput{}
	}
	sc.ordered = sc.ordered[:0]
	sc.serverIDs = sc.serverIDs[:0]
	for _, l := range sc.touched {
		g := &sc.rows[l]
		g.vs = g.vs[:0]
		g.weights = g.weights[:0]
		g.alloc = resources.Vector{}
		g.used = false
	}
	sc.touched = sc.touched[:0]
	encodePool.Put(sc)
}

// corunnerLess is the canonical corunner order: name, start delay,
// first placement.
func corunnerLess(a, b *WorkloadInput) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.StartDelayS != b.StartDelayS {
		return a.StartDelayS < b.StartDelayS
	}
	pa, pb := -1, -1
	if len(a.Placement) > 0 {
		pa = a.Placement[0]
	}
	if len(b.Placement) > 0 {
		pb = b.Placement[0]
	}
	return pa < pb
}

// Encode builds the feature vector for predicting workload ws[target]'s
// QoS under the colocation. Workloads beyond MaxWorkloads-1 corunners
// are dropped (the paper fixes n and zero-pads); servers beyond
// NumServers are rejected.
func (c Coder) Encode(target int, ws []WorkloadInput) ([]float64, error) {
	if target < 0 || target >= len(ws) {
		return nil, fmt.Errorf("core: target %d out of range", target)
	}
	x := make([]float64, c.Dim())
	if err := c.EncodeInto(x, target, ws); err != nil {
		return nil, err
	}
	return x, nil
}

// EncodeInto writes the feature vector for ws[target] into dst, which
// must have length Dim(). It is the allocation-free core of Encode: all
// intermediate state lives in pooled scratch, and dst is fully
// overwritten (zero-padded), so callers may reuse one buffer across
// calls. The output is bit-identical to Encode's. Safe for concurrent
// use with distinct dst buffers.
func (c Coder) EncodeInto(dst []float64, target int, ws []WorkloadInput) error {
	if len(dst) != c.Dim() {
		return fmt.Errorf("core: EncodeInto dst has %d entries, want %d", len(dst), c.Dim())
	}
	if target < 0 || target >= len(ws) {
		return fmt.Errorf("core: target %d out of range", target)
	}
	sc := encodePool.Get().(*codeScratch)
	defer sc.release()

	// Reorder: target in slot 0, corunners in a canonical order
	// (name, start delay, first placement) so that permuting the
	// submission order of corunners cannot change the code — slot
	// identity carries no information the model would have to learn
	// away. The insertion sort is stable (same result as
	// sort.SliceStable) and corunner counts are <= MaxWorkloads-1,
	// so it is also the fastest option here.
	sc.ordered = append(sc.ordered[:0], ws[target])
	for i := range ws {
		if i != target {
			sc.ordered = append(sc.ordered, ws[i])
		}
	}
	rest := sc.ordered[1:]
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && corunnerLess(&rest[j], &rest[j-1]); j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	if len(sc.ordered) > c.MaxWorkloads {
		sc.ordered = sc.ordered[:c.MaxWorkloads]
	}
	ordered := sc.ordered

	kind := Classify(ordered)
	for i := range dst {
		dst[i] = 0
	}
	dOff := (c.MaxWorkloads + 1) * c.blockSize()
	tOff := dOff + c.MaxWorkloads

	// Canonical server relabeling: the testbed's servers are
	// homogeneous, so physical server indices carry no information —
	// but fixed rows would force the model to relearn each
	// target-corunner interaction once per server. Rows are therefore
	// assigned in order of first use (target's functions first, then
	// corunners in slot order), which aligns "the server hosting the
	// target's first function" to row 0 in every sample.
	for i := range ordered {
		for _, l := range ordered[i].Placement {
			sc.rowOf(l)
		}
	}
	if need := c.NumServers; len(sc.rows) < need {
		sc.rows = append(sc.rows, make([]rowScratch, need-len(sc.rows))...)
	}

	// Temporal overlap coding (§3.3): delays relative to the first
	// SC/BG arrival; LS workloads carry D = T = 0.
	firstSC := 0.0
	found := false
	for i := range ordered {
		if ordered[i].Class != workload.LS {
			if !found || ordered[i].StartDelayS < firstSC {
				firstSC = ordered[i].StartDelayS
				found = true
			}
		}
	}

	for slot := range ordered {
		w := &ordered[slot]
		if len(w.Profiles) != len(w.Placement) {
			return fmt.Errorf("core: workload %q has %d profiles, %d placements",
				w.Name, len(w.Profiles), len(w.Placement))
		}
		// Spatial overlap coding: merge same-server functions into a
		// "virtual larger function" by CPU-demand-weighted averaging
		// of their metrics; allocations sum.
		for f := range w.Profiles {
			if w.Placement[f] < 0 {
				return fmt.Errorf("core: workload %q function %d on negative server", w.Name, f)
			}
			l := sc.rowOf(w.Placement[f])
			if l >= c.NumServers {
				return fmt.Errorf("core: workload %q function %d on server row %d (S=%d): %w",
					w.Name, f, l, c.NumServers, ErrTooManyServers)
			}
			g := &sc.rows[l]
			if !g.used {
				g.used = true
				sc.touched = append(sc.touched, l)
			}
			p := &w.Profiles[f]
			m := p.Metrics
			if w.Class == workload.LS && w.QPSFrac > 0 {
				m = profile.ScaleLoad(m, w.QPSFrac)
			}
			g.vs = append(g.vs, m)
			weight := p.Demand[resources.CPU] * w.replicas(f)
			if weight <= 0 {
				weight = 1e-6
			}
			g.weights = append(g.weights, weight)
			g.alloc = g.alloc.Add(p.Alloc.Scale(w.replicas(f)))
		}
		for _, l := range sc.touched {
			g := &sc.rows[l]
			merged := metrics.Mix(g.vs, g.weights).Select()
			for col, v := range merged {
				dst[c.UFeatureIndex(slot, l, col)] = v
				if slot > 0 {
					dst[c.UFeatureIndex(c.aggSlot(), l, col)] += v
				}
			}
			// R rows: the six allocation dimensions occupy the first
			// six columns; the rest stay zero-padded.
			for k := 0; k < int(resources.NumKinds); k++ {
				dst[c.rFeatureIndex(slot, l, k)] = g.alloc[k]
				if slot > 0 {
					dst[c.rFeatureIndex(c.aggSlot(), l, k)] += g.alloc[k]
				}
			}
			g.vs = g.vs[:0]
			g.weights = g.weights[:0]
			g.alloc = resources.Vector{}
			g.used = false
		}
		sc.touched = sc.touched[:0]
		switch {
		case kind == LSLS:
			// D = T = 0; QPS is already folded into the scaled metrics.
		case w.Class == workload.LS:
			// LS in a mixed colocation: D = T = 0.
		default:
			dst[dOff+slot] = w.StartDelayS - firstSC
			dst[tOff+slot] = w.LifetimeS
		}
	}
	return nil
}
