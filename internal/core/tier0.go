package core

import (
	"gsight/internal/metrics"
	"gsight/internal/ml"
	"gsight/internal/profile"
	"gsight/internal/resources"
)

// Tier0 is the cheap first tier of the two-tier prediction path: a
// ridge model over a ~34-feature reduction of the same colocation
// codes the forest trains on. The scheduler uses it to rank candidate
// servers and prune to a top-K shortlist before paying for full IRFR
// inference — the pattern the Alibaba scoring work and C-Koordinator
// use to make interference-aware placement tractable at cluster scale.
//
// The reduction collapses a colocation to "what the target sees on its
// servers, on average": the target's CPU-demand-weighted 16-metric
// profile mix, the corunner CPU allocation sharing those servers, and
// their interactions. The label is the same solo-normalized IPC ratio
// the forest learns, so a score is directly comparable to an SLA's
// MinIPC/soloIPC threshold.
//
// Tier0 ingests every IPC observation batch the forest ingests (same
// online window, same recency horizon) and bumps a generation counter
// on each ingest — the scheduler-side score caches key on that counter,
// which is the "explicit invalidation on observation ingest". All state
// is a pure function of the observation stream: no RNG, no clock, so
// cached scores are byte-identical across checkpoint/resume and at any
// shard/placer count.
type Tier0 struct {
	coder Coder
	ridge *ml.Ridge
	gen   uint64
	proj  [Tier0Dim]float64 // ingest-path scratch; single writer
}

// Tier-0 feature layout: bias, target 16-metric mix, corunner CPU on
// the target's servers, and load×mix interaction terms.
const (
	tier0Bias  = 0
	tier0Mix   = 1
	tier0Load  = tier0Mix + metrics.NumSelected
	tier0Cross = tier0Load + 1
	// Tier0Dim is the tier-0 scorer's feature dimension.
	Tier0Dim = tier0Cross + metrics.NumSelected
)

// tier0Window mirrors ml.ForestConfig's default incremental window so
// both tiers forget at the same horizon.
const tier0Window = 12000

// tier0Lambda is the ridge L2 strength. The projected features are in
// profile-metric units (O(1) after normalization), so a small constant
// regularizer suffices.
const tier0Lambda = 1e-3

func newTier0(c Coder) *Tier0 {
	return &Tier0{coder: c, ridge: ml.NewRidge(Tier0Dim, tier0Window, tier0Lambda)}
}

// Ready reports whether the scorer has a solved fit behind it. An
// unready scorer scores everything identically (zero), which the
// scheduler treats as "no tier-0 opinion".
func (t *Tier0) Ready() bool { return t != nil && t.ridge.Trained() }

// Gen returns the ingest generation. Any cached score computed at an
// older generation is stale.
func (t *Tier0) Gen() uint64 {
	if t == nil {
		return 0
	}
	return t.gen
}

// projectInto reduces one full colocation code to the tier-0 features:
// CPU-allocation-weighted averages over the target's server rows, so a
// workload spread over four servers and one packed on a single server
// land in the same feature scale.
func (t *Tier0) projectInto(x []float64, out []float64) {
	c := t.coder
	for i := range out {
		out[i] = 0
	}
	agg := c.aggSlot()
	cpu := int(resources.CPU)
	var wsum float64
	for s := 0; s < c.NumServers; s++ {
		w := x[c.rFeatureIndex(0, s, cpu)]
		if w <= 0 {
			continue
		}
		wsum += w
		for col := 0; col < metrics.NumSelected; col++ {
			out[tier0Mix+col] += w * x[c.UFeatureIndex(0, s, col)]
		}
		out[tier0Load] += w * x[c.rFeatureIndex(agg, s, cpu)]
	}
	out[tier0Bias] = 1
	if wsum > 0 {
		inv := 1 / wsum
		for col := 0; col < metrics.NumSelected; col++ {
			out[tier0Mix+col] *= inv
		}
		out[tier0Load] *= inv
	}
	load := out[tier0Load]
	for col := 0; col < metrics.NumSelected; col++ {
		out[tier0Cross+col] = load * out[tier0Mix+col]
	}
}

// train rebuilds the scorer from a bootstrap dataset (mirrors the
// forest's Fit, which resets its window).
func (t *Tier0) train(X [][]float64, Y []float64) {
	t.ridge.Reset()
	t.absorb(X, Y)
}

// absorb folds one observation batch in and refreshes the fit. Always
// bumps the generation: even a batch that leaves the model untrained
// invalidates downstream score caches.
func (t *Tier0) absorb(X [][]float64, Y []float64) {
	for i := range Y {
		t.projectInto(X[i], t.proj[:])
		t.ridge.Observe(t.proj[:], Y[i])
	}
	t.ridge.Refresh()
	t.gen++
}

// Tier0TargetStats reduces an archetype's solo-run profiles to its
// tier-0 target features: the CPU-demand-weighted 16-metric mix and the
// solo IPC reference (the same reference refFor normalizes labels by).
// Profiles are taken at reference load — per-request QPS and replica
// scaling are deliberately ignored so the result is a pure function of
// the archetype, which is what lets scores be cached per archetype and
// recomputed identically after a crash/resume.
func Tier0TargetStats(profiles []profile.Profile) (mix [metrics.NumSelected]float64, refIPC float64) {
	var wsum, ipc float64
	for f := range profiles {
		p := &profiles[f]
		w := p.Demand[resources.CPU]
		if w <= 0 {
			w = 1e-6
		}
		sel := p.Metrics.Select()
		for i, v := range sel {
			mix[i] += w * v
		}
		ipc += w * p.Metrics[metrics.IPC]
		wsum += w
	}
	if wsum > 0 {
		inv := 1 / wsum
		for i := range mix {
			mix[i] *= inv
		}
		ipc *= inv
	}
	if ipc <= 0 {
		ipc = 1
	}
	return mix, ipc
}

// Score predicts the solo-normalized IPC ratio of a target with the
// given profile mix against corunnerCPU cores of co-located allocation.
// Allocation-free; safe for concurrent use (read-only on model state).
// Returns 0 until Ready.
func (t *Tier0) Score(mix *[metrics.NumSelected]float64, corunnerCPU float64) float64 {
	var phi [Tier0Dim]float64
	phi[tier0Bias] = 1
	phi[tier0Load] = corunnerCPU
	for i, v := range mix {
		phi[tier0Mix+i] = v
		phi[tier0Cross+i] = corunnerCPU * v
	}
	return t.ridge.Predict(phi[:])
}
