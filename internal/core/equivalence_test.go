package core

import (
	"errors"
	"testing"

	"gsight/internal/ml"
	"gsight/internal/workload"
)

// testColocations builds a spread of colocation shapes — LSLS, LSSC,
// SCSC, wide placements — exercising every coding path.
func testColocations() [][]WorkloadInput {
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	ec := lsInput(workload.ECommerce(), []int{0, 1, 2, 0, 1, 2}, 0.4)
	mm := scInput(workload.MatMul(), 0, 30)
	dd := scInput(workload.DD(), 3, 60)
	fo := scInput(workload.FloatOp(), 7, 0)
	return [][]WorkloadInput{
		{sn, mm},
		{sn, ec},
		{mm, dd},
		{sn, mm, dd, fo},
		{ec, fo, dd},
	}
}

// TestEncodeIntoMatchesEncode is the tentpole equivalence: the pooled,
// allocation-free EncodeInto must reproduce Encode bit for bit — for
// every target of every colocation, and across reuses of a dirty
// destination buffer.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	c := DefaultCoder()
	dst := make([]float64, c.Dim())
	// Pre-poison the buffer: EncodeInto must fully overwrite it.
	for i := range dst {
		dst[i] = -1e9
	}
	for ci, ws := range testColocations() {
		for target := range ws {
			want, err := c.Encode(target, ws)
			if err != nil {
				t.Fatalf("colocation %d target %d: Encode: %v", ci, target, err)
			}
			if err := c.EncodeInto(dst, target, ws); err != nil {
				t.Fatalf("colocation %d target %d: EncodeInto: %v", ci, target, err)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("colocation %d target %d: feature %d differs: %v vs %v",
						ci, target, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestEncodeIntoValidatesDst(t *testing.T) {
	c := DefaultCoder()
	ws := testColocations()[0]
	if err := c.EncodeInto(make([]float64, c.Dim()-1), 0, ws); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := c.EncodeInto(make([]float64, c.Dim()), -1, ws); err == nil {
		t.Fatal("negative target accepted")
	}
	if err := c.EncodeInto(make([]float64, c.Dim()), len(ws), ws); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

// TestEncodeIntoAfterError reuses the pooled scratch right after an
// error return: the error path must leave no stale per-slot state
// behind (rows touched before the failure are cleared on release).
func TestEncodeIntoAfterError(t *testing.T) {
	c := Coder{NumServers: 2, MaxWorkloads: 3}
	good := []WorkloadInput{
		lsInput(workload.ECommerce(), []int{0, 1, 0, 1, 0, 1}, 0.4),
		scInput(workload.MatMul(), 1, 10),
	}
	// Needs 3 distinct servers with S=2: fails mid-encode after some
	// rows were already touched.
	bad := []WorkloadInput{
		lsInput(workload.ECommerce(), []int{0, 1, 2, 0, 1, 2}, 0.4),
		scInput(workload.MatMul(), 1, 10),
	}
	dst := make([]float64, c.Dim())
	if err := c.EncodeInto(dst, 0, bad); !errors.Is(err, ErrTooManyServers) {
		t.Fatalf("want ErrTooManyServers, got %v", err)
	}
	want, err := c.Encode(0, good)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := c.EncodeInto(dst, 0, good); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d: stale scratch corrupted feature %d: %v vs %v",
					round, i, dst[i], want[i])
			}
		}
	}
}

// TestEncodeIntoCorunnerPermutationInvariance re-checks the
// canonicalization claim on the buffer-reusing path: shuffling the
// corunners (everything but the target) must not change a single bit.
func TestEncodeIntoCorunnerPermutationInvariance(t *testing.T) {
	c := DefaultCoder()
	sn := lsInput(workload.SocialNetwork(), snPlacement(), 0.5)
	mm := scInput(workload.MatMul(), 0, 30)
	dd := scInput(workload.DD(), 3, 60)
	fo := scInput(workload.FloatOp(), 5, 90)
	perms := [][]WorkloadInput{
		{sn, mm, dd, fo},
		{sn, fo, mm, dd},
		{sn, dd, fo, mm},
		{sn, fo, dd, mm},
	}
	ref := make([]float64, c.Dim())
	if err := c.EncodeInto(ref, 0, perms[0]); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, c.Dim())
	for pi, ws := range perms[1:] {
		if err := c.EncodeInto(got, 0, ws); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("perm %d changed the code at feature %d", pi+1, i)
			}
		}
	}
}

// trainedTestPredictor fits small IPC and JCT models over the test
// colocations so prediction equivalence can be checked end to end.
func trainedTestPredictor(t *testing.T) (*Predictor, []Query) {
	t.Helper()
	p := NewPredictor(Config{
		Seed: 7,
		Factory: func(seed uint64) ml.Incremental {
			return ml.NewForest(ml.ForestConfig{Trees: 6, Seed: seed, Tree: ml.TreeConfig{MTry: 48}})
		},
	})
	var queries []Query
	var ipcObs, jctObs []Observation
	label := 0.4
	for _, ws := range testColocations() {
		for target := range ws {
			queries = append(queries, Query{Target: target, Inputs: ws})
			ipcObs = append(ipcObs, Observation{Target: target, Inputs: ws, Label: label})
			jctObs = append(jctObs, Observation{Target: target, Inputs: ws, Label: label * 100})
			label += 0.17
		}
	}
	if err := p.TrainObservations(IPCQoS, ipcObs); err != nil {
		t.Fatal(err)
	}
	if err := p.TrainObservations(JCTQoS, jctObs); err != nil {
		t.Fatal(err)
	}
	return p, queries
}

// TestPredictBatchMatchesPredict: batched inference must be
// bit-identical to the per-query path for every QoS kind it serves —
// including JCT, whose LogTarget wrapper has its own batch path.
func TestPredictBatchMatchesPredict(t *testing.T) {
	p, queries := trainedTestPredictor(t)
	for _, kind := range []QoSKind{IPCQoS, JCTQoS} {
		got, err := p.PredictBatch(kind, queries)
		if err != nil {
			t.Fatalf("%v: PredictBatch: %v", kind, err)
		}
		if len(got) != len(queries) {
			t.Fatalf("%v: got %d results for %d queries", kind, len(got), len(queries))
		}
		for i, q := range queries {
			want, err := p.Predict(kind, q.Target, q.Inputs)
			if err != nil {
				t.Fatalf("%v query %d: Predict: %v", kind, i, err)
			}
			if got[i] != want {
				t.Fatalf("%v query %d: batch %v != single %v", kind, i, got[i], want)
			}
		}
	}
}

func TestPredictBatchErrors(t *testing.T) {
	p, queries := trainedTestPredictor(t)
	if _, err := p.PredictBatch(TailLatencyQoS, queries); err == nil {
		t.Fatal("untrained kind accepted")
	}
	if err := p.PredictBatchInto(IPCQoS, queries, make([]float64, len(queries)-1)); err == nil {
		t.Fatal("short out slice accepted")
	}
	if out, err := p.PredictBatch(IPCQoS, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

// TestPredictConcurrent exercises the pooled encode buffers under
// concurrent Predict and PredictBatch calls (run with -race).
func TestPredictConcurrent(t *testing.T) {
	p, queries := trainedTestPredictor(t)
	want := make([]float64, len(queries))
	for i, q := range queries {
		v, err := p.Predict(IPCQoS, q.Target, q.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for round := 0; round < 20; round++ {
				if g%2 == 0 {
					got, err := p.PredictBatch(IPCQoS, queries)
					if err != nil {
						done <- err
						return
					}
					for i := range got {
						if got[i] != want[i] {
							done <- errors.New("concurrent batch diverged")
							return
						}
					}
				} else {
					for i, q := range queries {
						got, err := p.Predict(IPCQoS, q.Target, q.Inputs)
						if err != nil {
							done <- err
							return
						}
						if got != want[i] {
							done <- errors.New("concurrent predict diverged")
							return
						}
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
