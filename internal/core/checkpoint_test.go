package core

import (
	"testing"

	"gsight/internal/ml"
	"gsight/internal/workload"
)

func ckptPredictor(seed uint64) *Predictor {
	return NewPredictor(Config{
		Coder:       Coder{NumServers: 4, MaxWorkloads: 3},
		Factory:     func(s uint64) ml.Incremental { return ml.NewForest(ml.ForestConfig{Trees: 6, Seed: s, Window: 64}) },
		UpdateEvery: 10,
		Seed:        seed,
	})
}

// TestPredictorCheckpointRoundTrip: restoring a checkpoint into a fresh
// same-configured predictor must continue the learning stream exactly —
// same predictions before and after further observations on both.
func TestPredictorCheckpointRoundTrip(t *testing.T) {
	a := ckptPredictor(5)
	mm := scInput(workload.MatMul(), 0, 0)
	obsAt := func(p *Predictor, i int) {
		dd := scInput(workload.DD(), i%2, float64(i%7)*10)
		if err := p.Observe(IPCQoS, 0, []WorkloadInput{mm, dd}, 1.9-0.01*float64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	// Past the first flush (trained) with a part-filled pending buffer.
	for i := 0; i < 24; i++ {
		obsAt(a, i)
	}
	raw, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}

	b := ckptPredictor(5)
	if err := b.RestoreCheckpoint(raw); err != nil {
		t.Fatal(err)
	}
	if a.SamplesSeen(IPCQoS) != b.SamplesSeen(IPCQoS) {
		t.Fatalf("samples seen: %d vs %d", a.SamplesSeen(IPCQoS), b.SamplesSeen(IPCQoS))
	}
	// Drive both through more observations (crossing another flush) and
	// compare predictions bit-for-bit.
	for i := 24; i < 40; i++ {
		obsAt(a, i)
		obsAt(b, i)
	}
	dd := scInput(workload.DD(), 1, 30)
	pa, errA := a.Predict(IPCQoS, 0, []WorkloadInput{mm, dd})
	pb, errB := b.Predict(IPCQoS, 0, []WorkloadInput{mm, dd})
	if errA != nil || errB != nil {
		t.Fatalf("predict errors: %v, %v", errA, errB)
	}
	if pa != pb {
		t.Fatalf("restored predictor diverged: %v != %v", pb, pa)
	}
}

// TestPredictorRestoreRejectsCorruptState: malformed checkpoints must
// not be applied.
func TestPredictorRestoreRejectsCorruptState(t *testing.T) {
	for _, raw := range []string{
		`not json`,
		`{"version":2,"kinds":[]}`,
		`{"version":1,"kinds":[]}`, // wrong kind count
		`{"version":1,"kinds":[{"seen":-1},{},{}]}`,
		`{"version":1,"kinds":[{"pending_x":[[1]],"pending_y":[1]},{},{}]}`, // dim mismatch
	} {
		if err := ckptPredictor(7).RestoreCheckpoint([]byte(raw)); err == nil {
			t.Errorf("corrupt checkpoint %q accepted", raw)
		}
	}
}
