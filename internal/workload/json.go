package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gsight/internal/resources"
)

// JSON workload definitions let downstream users describe their own
// applications without touching Go code: the same information the
// catalog encodes — class, call-path DAG, per-function demands and
// sensitivities, phases — in a declarative file.

// jsonWorkload is the on-disk schema.
type jsonWorkload struct {
	Name          string         `json:"name"`
	Class         string         `json:"class"` // "BG" | "SC" | "LS"
	Entry         string         `json:"entry,omitempty"`
	SLAp99Ms      float64        `json:"sla_p99_ms,omitempty"`
	MaxQPS        float64        `json:"max_qps,omitempty"`
	SoloDurationS float64        `json:"solo_duration_s,omitempty"`
	Instances     int            `json:"instances,omitempty"`
	Functions     []jsonFunction `json:"functions"`
}

type jsonFunction struct {
	Name          string      `json:"name"`
	Demand        jsonVector  `json:"demand"`
	Sensitivity   jsonVector  `json:"sensitivity"`
	SoloIPC       float64     `json:"solo_ipc"`
	BaseServiceMs float64     `json:"base_service_ms,omitempty"`
	ColdStartMs   float64     `json:"cold_start_ms,omitempty"`
	Calls         []jsonCall  `json:"calls,omitempty"`
	Phases        []jsonPhase `json:"phases,omitempty"`
}

type jsonCall struct {
	Callee string `json:"callee"`
	Mode   string `json:"mode,omitempty"` // "nested" (default) | "sequence" | "async"
}

type jsonPhase struct {
	Frac        float64    `json:"frac"`
	DemandScale jsonVector `json:"demand_scale"`
	SensScale   float64    `json:"sens_scale"`
}

// jsonVector names the six resource dimensions explicitly.
type jsonVector struct {
	CPU     float64 `json:"cpu"`
	Memory  float64 `json:"memory_gb"`
	LLC     float64 `json:"llc_mb"`
	MemBW   float64 `json:"membw_gbps"`
	Network float64 `json:"network_gbps"`
	Disk    float64 `json:"disk_mbps"`
}

func (v jsonVector) vector() resources.Vector {
	return resources.Vector{
		resources.CPU:     v.CPU,
		resources.Memory:  v.Memory,
		resources.LLC:     v.LLC,
		resources.MemBW:   v.MemBW,
		resources.Network: v.Network,
		resources.Disk:    v.Disk,
	}
}

func toJSONVector(v resources.Vector) jsonVector {
	return jsonVector{
		CPU:     v[resources.CPU],
		Memory:  v[resources.Memory],
		LLC:     v[resources.LLC],
		MemBW:   v[resources.MemBW],
		Network: v[resources.Network],
		Disk:    v[resources.Disk],
	}
}

// ParseJSON decodes and validates one workload definition.
func ParseJSON(r io.Reader) (*Workload, error) {
	var in jsonWorkload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	w := &Workload{
		Name:          in.Name,
		SLAp99Ms:      in.SLAp99Ms,
		MaxQPS:        in.MaxQPS,
		SoloDurationS: in.SoloDurationS,
		Instances:     in.Instances,
	}
	switch in.Class {
	case "BG":
		w.Class = BG
	case "SC":
		w.Class = SC
	case "LS":
		w.Class = LS
	default:
		return nil, fmt.Errorf("workload %q: unknown class %q (want BG, SC or LS)", in.Name, in.Class)
	}
	if w.Instances == 0 {
		w.Instances = 1
	}
	index := map[string]int{}
	for i, f := range in.Functions {
		if f.Name == "" {
			return nil, fmt.Errorf("workload %q: function %d has no name", in.Name, i)
		}
		if _, dup := index[f.Name]; dup {
			return nil, fmt.Errorf("workload %q: duplicate function %q", in.Name, f.Name)
		}
		index[f.Name] = i
	}
	for _, jf := range in.Functions {
		fn := Function{
			Name:          jf.Name,
			Demand:        jf.Demand.vector(),
			Sensitivity:   jf.Sensitivity.vector(),
			SoloIPC:       jf.SoloIPC,
			BaseServiceMs: jf.BaseServiceMs,
			ColdStartMs:   jf.ColdStartMs,
		}
		if fn.SoloIPC <= 0 {
			return nil, fmt.Errorf("workload %q: function %q needs a positive solo_ipc", in.Name, jf.Name)
		}
		for _, c := range jf.Calls {
			callee, ok := index[c.Callee]
			if !ok {
				return nil, fmt.Errorf("workload %q: function %q calls unknown %q", in.Name, jf.Name, c.Callee)
			}
			mode := Nested
			switch c.Mode {
			case "", "nested":
			case "sequence":
				mode = Sequence
			case "async":
				mode = Async
			default:
				return nil, fmt.Errorf("workload %q: unknown call mode %q", in.Name, c.Mode)
			}
			fn.Calls = append(fn.Calls, Call{Callee: callee, Mode: mode})
		}
		for _, p := range jf.Phases {
			fn.Phases = append(fn.Phases, Phase{
				Frac:        p.Frac,
				DemandScale: p.DemandScale.vector(),
				SensScale:   p.SensScale,
			})
		}
		w.Functions = append(w.Functions, fn)
	}
	if in.Entry != "" {
		e, ok := index[in.Entry]
		if !ok {
			return nil, fmt.Errorf("workload %q: entry %q not among functions", in.Name, in.Entry)
		}
		w.Entry = e
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// LoadJSONFile parses a workload definition file.
func LoadJSONFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseJSON(f)
}

// WriteJSON encodes a workload in the same schema ParseJSON reads.
func WriteJSON(w io.Writer, wl *Workload) error {
	out := jsonWorkload{
		Name:          wl.Name,
		Class:         wl.Class.String(),
		SLAp99Ms:      wl.SLAp99Ms,
		MaxQPS:        wl.MaxQPS,
		SoloDurationS: wl.SoloDurationS,
		Instances:     wl.Instances,
	}
	if len(wl.Functions) > 0 {
		out.Entry = wl.Functions[wl.Entry].Name
	}
	for _, fn := range wl.Functions {
		jf := jsonFunction{
			Name:          fn.Name,
			Demand:        toJSONVector(fn.Demand),
			Sensitivity:   toJSONVector(fn.Sensitivity),
			SoloIPC:       fn.SoloIPC,
			BaseServiceMs: fn.BaseServiceMs,
			ColdStartMs:   fn.ColdStartMs,
		}
		for _, c := range fn.Calls {
			jf.Calls = append(jf.Calls, jsonCall{
				Callee: wl.Functions[c.Callee].Name,
				Mode:   c.Mode.String(),
			})
		}
		for _, p := range fn.Phases {
			jf.Phases = append(jf.Phases, jsonPhase{
				Frac:        p.Frac,
				DemandScale: toJSONVector(p.DemandScale),
				SensScale:   p.SensScale,
			})
		}
		out.Functions = append(out.Functions, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
