// Package workload models serverless workloads as call-path DAGs of
// small, short-lived functions, following the paper's taxonomy (Table 1):
// scheduled-background (BG), short-term computing (SC) and
// latency-sensitive (LS). It also carries the benchmark catalog used by
// every experiment — the DeathStarBench social network ported to
// functions (Figure 2), a TPC-W-style e-commerce service, the
// FunctionBench micro-benchmarks, and the SparkBench Logistic
// Regression / KMeans jobs used in the temporal-overlap study.
package workload

import (
	"fmt"

	"gsight/internal/resources"
)

// Class is the workload category of Table 1.
type Class int

const (
	// BG workloads are triggered or scheduled intermittently with no
	// latency requirements (IoT collection, monitoring).
	BG Class = iota
	// SC workloads have minute-level processing times; millisecond
	// changes in completion time are trivial (big data, linear algebra).
	SC
	// LS workloads are invoked frequently; millisecond latency
	// increases degrade user experience (web search, e-commerce,
	// social networks).
	LS
)

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	switch c {
	case BG:
		return "BG"
	case SC:
		return "SC"
	case LS:
		return "LS"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// CallMode describes how a function invokes a callee (§2.1 Observation 4
// distinguishes sequence chains from nested chains; async calls are off
// the critical path entirely).
type CallMode int

const (
	// Nested calls block the caller until the callee returns, so callee
	// slowdown propagates upstream.
	Nested CallMode = iota
	// Sequence calls run after the caller completes; caller saturation
	// throttles the callee's arrival rate.
	Sequence
	// Async calls are fire-and-forget and do not contribute to the
	// end-to-end latency.
	Async
)

// String names the call mode.
func (m CallMode) String() string {
	switch m {
	case Nested:
		return "nested"
	case Sequence:
		return "sequence"
	case Async:
		return "async"
	}
	return fmt.Sprintf("CallMode(%d)", int(m))
}

// Call is one edge of the call-path DAG.
type Call struct {
	Callee int // index into Workload.Functions
	Mode   CallMode
}

// Phase is one execution segment of an SC/BG function. Short-lived
// functions overlap at arbitrary offsets (Observation 3), and phases are
// what make that overlap matter: a KMeans iteration pressing on memory
// bandwidth hurts a corunner only while their phases coincide.
type Phase struct {
	// Frac is the fraction of the function's solo execution this phase
	// spans. Fractions of a function's phases must sum to 1.
	Frac float64
	// DemandScale multiplies the function's base demand during the phase.
	DemandScale resources.Vector
	// SensScale multiplies the function's interference sensitivity
	// during the phase (e.g. LR's late-map/shuffle phase is more
	// sensitive than early map, Figure 3(b)).
	SensScale float64
}

// Function is one serverless function: its solo-run resource demand, its
// sensitivity to contention on each shared resource, and its place in
// the workload DAG.
type Function struct {
	Name string
	// Demand is the solo-run resource consumption of one instance
	// (cores, GB, MB LLC working set, GB/s, Gb/s, MB/s).
	Demand resources.Vector
	// Sensitivity in [0,1] per resource: how strongly contention on
	// that resource slows this function down.
	Sensitivity resources.Vector
	// SoloIPC is the instructions-per-cycle achieved under solo run.
	SoloIPC float64
	// BaseServiceMs is the per-invocation service time of an LS
	// function under solo run at its reference load.
	BaseServiceMs float64
	// Calls are the outgoing edges of the DAG.
	Calls []Call
	// Phases describe time-varying behaviour (SC/BG); empty means a
	// single uniform phase.
	Phases []Phase
	// ColdStartMs is the additional startup latency when the function
	// is invoked cold (§5.2).
	ColdStartMs float64
}

// EffectivePhases returns the function's phases, defaulting to a single
// uniform phase when none are declared.
func (f *Function) EffectivePhases() []Phase {
	if len(f.Phases) == 0 {
		return []Phase{{
			Frac:        1,
			DemandScale: resources.Vector{1, 1, 1, 1, 1, 1},
			SensScale:   1,
		}}
	}
	return f.Phases
}

// PhaseAt returns the phase active at progress in [0,1) through the
// function's execution, plus the phase index.
func (f *Function) PhaseAt(progress float64) (Phase, int) {
	phases := f.EffectivePhases()
	acc := 0.0
	for i, p := range phases {
		acc += p.Frac
		if progress < acc || i == len(phases)-1 {
			return p, i
		}
	}
	return phases[len(phases)-1], len(phases) - 1
}

// Workload is a user-submitted application: a DAG of functions plus its
// class and QoS contract.
type Workload struct {
	Name      string
	Class     Class
	Functions []Function
	// Entry is the index of the function that receives external
	// requests (for LS) or starts the job (for SC/BG).
	Entry int
	// SLAp99Ms is the 99th-percentile end-to-end latency target of an
	// LS workload (e.g. 267 ms for the social network, 88 ms for
	// e-commerce, §6.3). Zero means no latency SLA.
	SLAp99Ms float64
	// MaxQPS is the maximum request load the LS workload sustains
	// without interference (used to define its SLA, §6.3).
	MaxQPS float64
	// SoloDurationS is the solo-run completion time of an SC/BG job.
	SoloDurationS float64
	// Instances is the number of parallel instances an SC job employs
	// (e.g. 60 for LR/KMeans in Figure 3(b)).
	Instances int
}

// Validate checks structural invariants: entry in range, calls acyclic
// and in range, phase fractions summing to ~1.
func (w *Workload) Validate() error {
	if len(w.Functions) == 0 {
		return fmt.Errorf("workload %q: no functions", w.Name)
	}
	if w.Entry < 0 || w.Entry >= len(w.Functions) {
		return fmt.Errorf("workload %q: entry %d out of range", w.Name, w.Entry)
	}
	for i, f := range w.Functions {
		for _, c := range f.Calls {
			if c.Callee < 0 || c.Callee >= len(w.Functions) {
				return fmt.Errorf("workload %q: function %q calls out-of-range callee %d", w.Name, f.Name, c.Callee)
			}
			if c.Callee == i {
				return fmt.Errorf("workload %q: function %q calls itself", w.Name, f.Name)
			}
		}
		if len(f.Phases) > 0 {
			sum := 0.0
			for _, p := range f.Phases {
				if p.Frac <= 0 {
					return fmt.Errorf("workload %q: function %q has non-positive phase fraction", w.Name, f.Name)
				}
				sum += p.Frac
			}
			if sum < 0.999 || sum > 1.001 {
				return fmt.Errorf("workload %q: function %q phase fractions sum to %v", w.Name, f.Name, sum)
			}
		}
	}
	if w.hasCycle() {
		return fmt.Errorf("workload %q: call graph has a cycle", w.Name)
	}
	return nil
}

func (w *Workload) hasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(w.Functions))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, c := range w.Functions[i].Calls {
			switch color[c.Callee] {
			case gray:
				return true
			case white:
				if visit(c.Callee) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range w.Functions {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// NumFunctions returns the number of functions in the workload.
func (w *Workload) NumFunctions() int { return len(w.Functions) }

// FunctionIndex returns the index of the named function, or -1.
func (w *Workload) FunctionIndex(name string) int {
	for i, f := range w.Functions {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// CriticalPath returns the function indices on the longest
// BaseServiceMs-weighted path from the entry. Nested calls run inside
// the caller and sequence calls run after it, so both compose along the
// path: latency(i) = svc(i) + max(nested subtrees) + max(sequence
// subtrees). Async edges are excluded — they are the paper's
// "non-critical path" (Observation 2).
func (w *Workload) CriticalPath() []int {
	memoLen := make(map[int]float64)
	var longest func(i int) float64
	longest = func(i int) float64 {
		if v, ok := memoLen[i]; ok {
			return v
		}
		var maxNested, maxSeq float64
		for _, c := range w.Functions[i].Calls {
			l := longest(c.Callee)
			switch c.Mode {
			case Nested:
				if l > maxNested {
					maxNested = l
				}
			case Sequence:
				if l > maxSeq {
					maxSeq = l
				}
			}
		}
		v := w.Functions[i].BaseServiceMs + maxNested + maxSeq
		memoLen[i] = v
		return v
	}
	longest(w.Entry)
	argmax := func(i int, mode CallMode) int {
		best, arg := 0.0, -1
		for _, c := range w.Functions[i].Calls {
			if c.Mode != mode {
				continue
			}
			if l := longest(c.Callee); arg == -1 || l > best {
				best, arg = l, c.Callee
			}
		}
		return arg
	}
	var path []int
	var walk func(i int)
	walk = func(i int) {
		path = append(path, i)
		if n := argmax(i, Nested); n != -1 {
			walk(n)
		}
		if s := argmax(i, Sequence); s != -1 {
			walk(s)
		}
	}
	walk(w.Entry)
	return path
}

// OnCriticalPath reports whether function fn lies on the critical path.
func (w *Workload) OnCriticalPath(fn int) bool {
	for _, i := range w.CriticalPath() {
		if i == fn {
			return true
		}
	}
	return false
}

// TotalDemand returns the sum of all functions' solo demands.
func (w *Workload) TotalDemand() resources.Vector {
	var total resources.Vector
	for _, f := range w.Functions {
		total = total.Add(f.Demand)
	}
	return total
}

// Clone returns a deep copy of the workload; schedulers mutate
// placements, not workloads, but experiments clone catalog entries to
// vary parameters safely.
func (w *Workload) Clone() *Workload {
	c := *w
	c.Functions = make([]Function, len(w.Functions))
	for i, f := range w.Functions {
		nf := f
		nf.Calls = append([]Call(nil), f.Calls...)
		nf.Phases = append([]Phase(nil), f.Phases...)
		c.Functions[i] = nf
	}
	return &c
}
