package workload

import "gsight/internal/resources"

// The benchmark catalog. Demands use resources.Vector order
// {CPU cores, Memory GB, LLC MB, MemBW GB/s, Network Gb/s, Disk MB/s};
// sensitivities are unitless in [0,1].

// SocialNetwork returns the message-posting workflow of the
// DeathStarBench social network ported to nine serverless functions
// (Figure 2, workload #1). The end-to-end critical path is
// ① compose-post → ② upload-media → ⑥ compose-and-upload →
// ⑧ upload-home-timeline → ⑨ get-followers; functions ③④⑤ are
// parallel branches and ⑦ post-storage is asynchronous — the paper's
// non-critical path. Its measured no-interference SLA is a 267 ms
// 99th-percentile latency (§6.3).
func SocialNetwork() *Workload {
	w := &Workload{
		Name:     "social-network",
		Class:    LS,
		SLAp99Ms: 267,
		MaxQPS:   600,
		Entry:    0,
		Functions: []Function{
			{ // 0: ① compose-post — the entry; fans out to uploads.
				Name:          "compose-post",
				Demand:        resources.Vector{1.0, 0.25, 2.0, 1.2, 0.30, 2},
				Sensitivity:   resources.Vector{0.55, 0.10, 0.45, 0.40, 0.25, 0.05},
				SoloIPC:       1.25,
				BaseServiceMs: 9,
				ColdStartMs:   450,
				Calls: []Call{
					{Callee: 1, Mode: Nested},
					{Callee: 2, Mode: Nested},
					{Callee: 3, Mode: Nested},
					{Callee: 4, Mode: Nested},
					{Callee: 5, Mode: Sequence},
				},
			},
			{ // 1: ② upload-media — the heaviest branch (media payloads).
				Name:          "upload-media",
				Demand:        resources.Vector{1.4, 0.40, 3.0, 2.2, 0.60, 8},
				Sensitivity:   resources.Vector{0.60, 0.15, 0.55, 0.55, 0.45, 0.15},
				SoloIPC:       1.10,
				BaseServiceMs: 12,
				ColdStartMs:   600,
			},
			{ // 2: ③ upload-text — light, off the critical path.
				Name:          "upload-text",
				Demand:        resources.Vector{0.5, 0.12, 0.8, 0.5, 0.10, 1},
				Sensitivity:   resources.Vector{0.35, 0.08, 0.25, 0.20, 0.15, 0.04},
				SoloIPC:       1.35,
				BaseServiceMs: 4,
				ColdStartMs:   300,
			},
			{ // 3: ④ upload-urls — light, off the critical path.
				Name:          "upload-urls",
				Demand:        resources.Vector{0.5, 0.10, 0.7, 0.4, 0.12, 1},
				Sensitivity:   resources.Vector{0.30, 0.08, 0.22, 0.18, 0.18, 0.04},
				SoloIPC:       1.38,
				BaseServiceMs: 4,
				ColdStartMs:   300,
			},
			{ // 4: ⑤ upload-unique-id — tiny helper.
				Name:          "upload-unique-id",
				Demand:        resources.Vector{0.3, 0.08, 0.4, 0.3, 0.05, 0},
				Sensitivity:   resources.Vector{0.25, 0.05, 0.18, 0.15, 0.08, 0.02},
				SoloIPC:       1.45,
				BaseServiceMs: 2,
				ColdStartMs:   250,
			},
			{ // 5: ⑥ compose-and-upload — joins the branches; a hotspot
				// here is maximally disruptive (Figure 4(b)).
				Name:          "compose-and-upload",
				Demand:        resources.Vector{1.2, 0.30, 2.5, 1.8, 0.40, 3},
				Sensitivity:   resources.Vector{0.60, 0.12, 0.50, 0.50, 0.30, 0.08},
				SoloIPC:       1.18,
				BaseServiceMs: 10,
				ColdStartMs:   500,
				Calls: []Call{
					{Callee: 6, Mode: Async},
					{Callee: 7, Mode: Sequence},
				},
			},
			{ // 6: ⑦ post-storage — asynchronous write, non-critical.
				Name:          "post-storage",
				Demand:        resources.Vector{0.6, 0.30, 1.0, 0.8, 0.20, 15},
				Sensitivity:   resources.Vector{0.30, 0.12, 0.25, 0.25, 0.15, 0.40},
				SoloIPC:       1.05,
				BaseServiceMs: 8,
				ColdStartMs:   400,
			},
			{ // 7: ⑧ upload-home-timeline — fan-out write to timelines.
				Name:          "upload-home-timeline",
				Demand:        resources.Vector{1.0, 0.35, 2.2, 1.6, 0.50, 4},
				Sensitivity:   resources.Vector{0.55, 0.15, 0.50, 0.45, 0.40, 0.10},
				SoloIPC:       1.12,
				BaseServiceMs: 9,
				ColdStartMs:   450,
				Calls:         []Call{{Callee: 8, Mode: Nested}},
			},
			{ // 8: ⑨ get-followers — cache/bandwidth hungry graph read;
				// the most interference-sensitive function (Figure 3(a):
				// matmul beside it triples the workflow's p99 versus
				// beside compose-post).
				Name:          "get-followers",
				Demand:        resources.Vector{1.3, 0.40, 4.0, 3.0, 0.35, 2},
				Sensitivity:   resources.Vector{0.70, 0.20, 0.90, 0.85, 0.30, 0.05},
				SoloIPC:       1.02,
				BaseServiceMs: 11,
				ColdStartMs:   500,
			},
		},
	}
	return w
}

// ECommerce returns a TPC-W-style e-commerce service as six functions
// (frontend → search/product in parallel → cart → order → payment).
// Its no-interference SLA is an 88 ms 99th-percentile latency (§6.3).
func ECommerce() *Workload {
	return &Workload{
		Name:     "e-commerce",
		Class:    LS,
		SLAp99Ms: 88,
		MaxQPS:   900,
		Entry:    0,
		Functions: []Function{
			{
				Name:          "frontend",
				Demand:        resources.Vector{0.8, 0.20, 1.5, 1.0, 0.40, 1},
				Sensitivity:   resources.Vector{0.50, 0.10, 0.40, 0.35, 0.30, 0.04},
				SoloIPC:       1.30,
				BaseServiceMs: 3,
				ColdStartMs:   350,
				Calls: []Call{
					{Callee: 1, Mode: Nested},
					{Callee: 2, Mode: Nested},
					{Callee: 3, Mode: Sequence},
				},
			},
			{
				Name:          "search",
				Demand:        resources.Vector{1.2, 0.35, 3.0, 2.0, 0.30, 3},
				Sensitivity:   resources.Vector{0.65, 0.15, 0.70, 0.60, 0.25, 0.08},
				SoloIPC:       1.08,
				BaseServiceMs: 5,
				ColdStartMs:   500,
			},
			{
				Name:          "product-catalog",
				Demand:        resources.Vector{0.9, 0.30, 2.5, 1.5, 0.25, 4},
				Sensitivity:   resources.Vector{0.55, 0.12, 0.60, 0.50, 0.20, 0.12},
				SoloIPC:       1.12,
				BaseServiceMs: 4,
				ColdStartMs:   450,
			},
			{
				Name:          "cart",
				Demand:        resources.Vector{0.6, 0.15, 1.0, 0.8, 0.20, 2},
				Sensitivity:   resources.Vector{0.45, 0.10, 0.35, 0.30, 0.20, 0.06},
				SoloIPC:       1.28,
				BaseServiceMs: 3,
				ColdStartMs:   350,
				Calls:         []Call{{Callee: 4, Mode: Nested}},
			},
			{
				Name:          "order",
				Demand:        resources.Vector{0.7, 0.20, 1.2, 1.0, 0.25, 5},
				Sensitivity:   resources.Vector{0.50, 0.12, 0.40, 0.35, 0.25, 0.15},
				SoloIPC:       1.20,
				BaseServiceMs: 4,
				ColdStartMs:   400,
				Calls:         []Call{{Callee: 5, Mode: Nested}},
			},
			{
				Name:          "payment",
				Demand:        resources.Vector{0.5, 0.15, 0.8, 0.6, 0.30, 1},
				Sensitivity:   resources.Vector{0.40, 0.08, 0.30, 0.25, 0.35, 0.04},
				SoloIPC:       1.32,
				BaseServiceMs: 3,
				ColdStartMs:   350,
			},
		},
	}
}

// MLServing returns a CPU-intensive latency-sensitive inference service;
// it is the "CPU intensive" group of the Figure 13 concept-shift study.
// Its solo IPC is ~1.6x that of the I/O-intensive social network, as the
// paper reports.
func MLServing() *Workload {
	return &Workload{
		Name:     "ml-serving",
		Class:    LS,
		SLAp99Ms: 150,
		MaxQPS:   400,
		Entry:    0,
		Functions: []Function{
			{
				Name:          "preprocess",
				Demand:        resources.Vector{1.5, 0.40, 3.0, 4.0, 0.20, 1},
				Sensitivity:   resources.Vector{0.75, 0.10, 0.55, 0.60, 0.10, 0.02},
				SoloIPC:       1.90,
				BaseServiceMs: 6,
				ColdStartMs:   700,
				Calls:         []Call{{Callee: 1, Mode: Nested}},
			},
			{
				Name:          "inference",
				Demand:        resources.Vector{3.0, 1.20, 8.0, 9.0, 0.10, 0},
				Sensitivity:   resources.Vector{0.85, 0.15, 0.75, 0.80, 0.05, 0.01},
				SoloIPC:       2.05,
				BaseServiceMs: 18,
				ColdStartMs:   1200,
				Calls:         []Call{{Callee: 2, Mode: Nested}},
			},
			{
				Name:          "postprocess",
				Demand:        resources.Vector{0.8, 0.20, 1.5, 1.5, 0.15, 0},
				Sensitivity:   resources.Vector{0.60, 0.08, 0.40, 0.45, 0.10, 0.01},
				SoloIPC:       1.85,
				BaseServiceMs: 4,
				ColdStartMs:   400,
			},
		},
	}
}

// MatMul returns the FunctionBench matrix-multiplication
// micro-benchmark: CPU-, cache- and bandwidth-intensive.
func MatMul() *Workload {
	return &Workload{
		Name:          "matmul",
		Class:         SC,
		SoloDurationS: 180,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "matmul",
			Demand:      resources.Vector{8, 4.0, 12, 22, 0.05, 2},
			Sensitivity: resources.Vector{0.80, 0.10, 0.85, 0.80, 0.02, 0.02},
			SoloIPC:     1.95,
			ColdStartMs: 800,
		}},
	}
}

// DD returns the FunctionBench dd micro-benchmark: disk-I/O intensive.
func DD() *Workload {
	return &Workload{
		Name:          "dd",
		Class:         SC,
		SoloDurationS: 150,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "dd",
			Demand:      resources.Vector{1, 0.5, 1, 2, 0.02, 420},
			Sensitivity: resources.Vector{0.15, 0.05, 0.10, 0.15, 0.02, 0.90},
			SoloIPC:     0.65,
			ColdStartMs: 300,
		}},
	}
}

// Iperf returns the FunctionBench iperf micro-benchmark:
// network-bandwidth intensive; it barely perturbs corunners' IPC
// (Figure 3(a)).
func Iperf() *Workload {
	return &Workload{
		Name:          "iperf",
		Class:         SC,
		SoloDurationS: 120,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "iperf",
			Demand:      resources.Vector{0.8, 0.2, 0.5, 1.5, 8.5, 1},
			Sensitivity: resources.Vector{0.10, 0.03, 0.06, 0.10, 0.95, 0.02},
			SoloIPC:     0.80,
			ColdStartMs: 250,
		}},
	}
}

// VideoProcessing returns the FunctionBench video-processing
// application: high CPU and memory pressure, medium disk and network.
func VideoProcessing() *Workload {
	return &Workload{
		Name:          "video-processing",
		Class:         SC,
		SoloDurationS: 240,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "video-processing",
			Demand:      resources.Vector{6, 6.0, 10, 16, 1.2, 60},
			Sensitivity: resources.Vector{0.75, 0.30, 0.70, 0.70, 0.25, 0.25},
			SoloIPC:     1.70,
			ColdStartMs: 1500,
		}},
	}
}

// FloatOp returns the FunctionBench float-operation micro-benchmark,
// the one short-lived FunctionBench member (seconds, not minutes).
func FloatOp() *Workload {
	return &Workload{
		Name:          "float-op",
		Class:         SC,
		SoloDurationS: 6,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "float-op",
			Demand:      resources.Vector{2, 0.2, 1.5, 2.5, 0.01, 0},
			Sensitivity: resources.Vector{0.70, 0.05, 0.40, 0.40, 0.01, 0.01},
			SoloIPC:     2.20,
			ColdStartMs: 200,
		}},
	}
}

// lrPhases models the SparkBench LR job's time-varying sensitivity: an
// early map phase that tolerates interference well, a late-map/shuffle
// phase that is much more sensitive (the Figure 3(b) finding), and a
// reduce phase.
func lrPhases() []Phase {
	return []Phase{
		{Frac: 0.55, DemandScale: resources.Vector{0.9, 1.0, 0.7, 0.7, 0.5, 1.0}, SensScale: 0.15},
		{Frac: 0.30, DemandScale: resources.Vector{1.2, 1.1, 1.4, 1.5, 1.8, 1.1}, SensScale: 1.60},
		{Frac: 0.15, DemandScale: resources.Vector{0.8, 1.0, 0.9, 0.9, 1.0, 0.8}, SensScale: 0.50},
	}
}

// LogisticRegression returns the SparkBench LR job: 60 instances
// processing 15 GB (4 M examples), solo JCT ≈ 429 s (Figure 3(b)).
func LogisticRegression() *Workload {
	return &Workload{
		Name:          "logistic-regression",
		Class:         SC,
		SoloDurationS: 429,
		Instances:     60,
		Entry:         0,
		Functions: []Function{{
			Name:        "lr-worker",
			Demand:      resources.Vector{0.11, 0.25, 0.20, 0.12, 0.08, 2},
			Sensitivity: resources.Vector{0.45, 0.15, 0.45, 0.50, 0.20, 0.05},
			SoloIPC:     1.45,
			Phases:      lrPhases(),
			ColdStartMs: 900,
		}},
	}
}

// KMeans returns the SparkBench KMeans job: 60 instances clustering two
// 15 GB partitions of 4 M points (Figure 3(b)).
func KMeans() *Workload {
	return &Workload{
		Name:          "kmeans",
		Class:         SC,
		SoloDurationS: 410,
		Instances:     60,
		Entry:         0,
		Functions: []Function{{
			Name:        "kmeans-worker",
			Demand:      resources.Vector{0.12, 0.25, 0.22, 0.13, 0.08, 2},
			Sensitivity: resources.Vector{0.50, 0.15, 0.50, 0.55, 0.18, 0.05},
			SoloIPC:     1.40,
			// KMeans front-loads its heaviest iterations, so delaying
			// it slides that heavy phase onto the corunner's sensitive
			// shuffle window (Figure 3(b)'s rise to g4).
			Phases: []Phase{
				{Frac: 0.40, DemandScale: resources.Vector{1.60, 1.0, 1.50, 1.55, 0.8, 1.0}, SensScale: 0.50},
				{Frac: 0.35, DemandScale: resources.Vector{0.55, 1.0, 0.55, 0.55, 1.3, 1.0}, SensScale: 1.80},
				{Frac: 0.25, DemandScale: resources.Vector{0.50, 1.0, 0.60, 0.60, 1.0, 0.9}, SensScale: 0.50},
			},
			ColdStartMs: 900,
		}},
	}
}

// FeatureGeneration returns a three-function SC pipeline standing in for
// FunctionBench's feature-generation application (the shape of workload
// #2 in Figure 2: ⑩ → ⑪ → ⑫). It is one of the Figure 5 training
// workloads.
func FeatureGeneration() *Workload {
	return &Workload{
		Name:          "feature-generation",
		Class:         SC,
		SoloDurationS: 200,
		Instances:     1,
		Entry:         0,
		Functions: []Function{
			{
				Name:        "extract",
				Demand:      resources.Vector{2, 1.5, 3, 5, 0.8, 40},
				Sensitivity: resources.Vector{0.55, 0.15, 0.45, 0.50, 0.30, 0.35},
				SoloIPC:     1.15,
				ColdStartMs: 600,
				Calls:       []Call{{Callee: 1, Mode: Sequence}},
			},
			{
				Name:        "transform",
				Demand:      resources.Vector{4, 2.0, 6, 10, 0.3, 5},
				Sensitivity: resources.Vector{0.70, 0.15, 0.65, 0.70, 0.10, 0.05},
				SoloIPC:     1.75,
				ColdStartMs: 700,
				Calls:       []Call{{Callee: 2, Mode: Sequence}},
			},
			{
				Name:        "aggregate",
				Demand:      resources.Vector{1.5, 1.0, 2, 3, 0.5, 20},
				Sensitivity: resources.Vector{0.50, 0.12, 0.40, 0.45, 0.25, 0.20},
				SoloIPC:     1.30,
				ColdStartMs: 500,
			},
		},
	}
}

// DataPipeline returns a two-function SC workload with the shape of
// Figure 2's workload #3 (⑬ → ⑭).
func DataPipeline() *Workload {
	return &Workload{
		Name:          "data-pipeline",
		Class:         SC,
		SoloDurationS: 90,
		Instances:     1,
		Entry:         0,
		Functions: []Function{
			{
				Name:        "ingest",
				Demand:      resources.Vector{1, 0.8, 1.5, 2.5, 1.5, 30},
				Sensitivity: resources.Vector{0.40, 0.12, 0.35, 0.40, 0.50, 0.30},
				SoloIPC:     0.95,
				ColdStartMs: 400,
				Calls:       []Call{{Callee: 1, Mode: Sequence}},
			},
			{
				Name:        "compact",
				Demand:      resources.Vector{2, 1.2, 3.0, 4.5, 0.2, 50},
				Sensitivity: resources.Vector{0.55, 0.15, 0.50, 0.55, 0.10, 0.40},
				SoloIPC:     1.25,
				ColdStartMs: 500,
			},
		},
	}
}

// WebSearch returns a search service in the shape the paper's Table 1
// cites (serverless information retrieval, Crane & Lin): a query
// frontend fanning out to two index shards with a rank/merge stage.
func WebSearch() *Workload {
	return &Workload{
		Name:     "web-search",
		Class:    LS,
		SLAp99Ms: 180,
		MaxQPS:   700,
		Entry:    0,
		Functions: []Function{
			{
				Name:          "query-frontend",
				Demand:        resources.Vector{0.7, 0.18, 1.2, 0.9, 0.35, 1},
				Sensitivity:   resources.Vector{0.50, 0.10, 0.35, 0.32, 0.28, 0.04},
				SoloIPC:       1.32,
				BaseServiceMs: 3,
				ColdStartMs:   350,
				Calls: []Call{
					{Callee: 1, Mode: Nested},
					{Callee: 2, Mode: Nested},
					{Callee: 3, Mode: Sequence},
				},
			},
			{
				Name:          "index-shard-a",
				Demand:        resources.Vector{1.4, 0.45, 3.5, 2.6, 0.25, 6},
				Sensitivity:   resources.Vector{0.65, 0.18, 0.75, 0.65, 0.20, 0.12},
				SoloIPC:       1.02,
				BaseServiceMs: 7,
				ColdStartMs:   650,
			},
			{
				Name:          "index-shard-b",
				Demand:        resources.Vector{1.4, 0.45, 3.5, 2.6, 0.25, 6},
				Sensitivity:   resources.Vector{0.65, 0.18, 0.75, 0.65, 0.20, 0.12},
				SoloIPC:       1.02,
				BaseServiceMs: 7,
				ColdStartMs:   650,
			},
			{
				Name:          "rank-merge",
				Demand:        resources.Vector{1.1, 0.30, 2.0, 2.2, 0.20, 1},
				Sensitivity:   resources.Vector{0.60, 0.12, 0.55, 0.55, 0.15, 0.04},
				SoloIPC:       1.48,
				BaseServiceMs: 4,
				ColdStartMs:   450,
			},
		},
	}
}

// ImageResize returns a bursty media-transcoding SC function, the
// canonical short serverless batch job.
func ImageResize() *Workload {
	return &Workload{
		Name:          "image-resize",
		Class:         SC,
		SoloDurationS: 45,
		Instances:     4,
		Entry:         0,
		Functions: []Function{{
			Name:        "resize",
			Demand:      resources.Vector{1.8, 0.7, 2.5, 4.5, 0.6, 25},
			Sensitivity: resources.Vector{0.65, 0.12, 0.50, 0.55, 0.25, 0.20},
			SoloIPC:     1.60,
			ColdStartMs: 500,
		}},
	}
}

// WordCount returns a two-stage map/reduce SC job with the classic
// shuffle-heavy middle, rounding out the Table 1 "bigdata" examples.
func WordCount() *Workload {
	return &Workload{
		Name:          "wordcount",
		Class:         SC,
		SoloDurationS: 150,
		Instances:     24,
		Entry:         0,
		Functions: []Function{
			{
				Name:        "wc-map",
				Demand:      resources.Vector{0.20, 0.30, 0.5, 0.45, 0.15, 8},
				Sensitivity: resources.Vector{0.50, 0.12, 0.45, 0.50, 0.20, 0.20},
				SoloIPC:     1.35,
				ColdStartMs: 700,
				Calls:       []Call{{Callee: 1, Mode: Sequence}},
				Phases: []Phase{
					{Frac: 0.70, DemandScale: resources.Vector{1.1, 1, 1, 1, 0.4, 1.2}, SensScale: 0.60},
					{Frac: 0.30, DemandScale: resources.Vector{0.8, 1, 1.2, 1.3, 2.0, 0.6}, SensScale: 1.60},
				},
			},
			{
				Name:        "wc-reduce",
				Demand:      resources.Vector{0.25, 0.35, 0.7, 0.6, 0.20, 12},
				Sensitivity: resources.Vector{0.55, 0.12, 0.50, 0.55, 0.22, 0.25},
				SoloIPC:     1.25,
				ColdStartMs: 700,
			},
		},
	}
}

// CronCleanup returns a periodic housekeeping BG job (log rotation,
// temp-file cleanup).
func CronCleanup() *Workload {
	return &Workload{
		Name:          "cron-cleanup",
		Class:         BG,
		SoloDurationS: 45,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "cleanup",
			Demand:      resources.Vector{0.25, 0.12, 0.3, 0.3, 0.05, 30},
			Sensitivity: resources.Vector{0.20, 0.05, 0.12, 0.12, 0.05, 0.35},
			SoloIPC:     0.85,
			ColdStartMs: 200,
		}},
	}
}

// IoTCollector returns a scheduled-background data-collection workload
// (Table 1's BG class): tiny, intermittent, no latency requirement.
func IoTCollector() *Workload {
	return &Workload{
		Name:          "iot-collector",
		Class:         BG,
		SoloDurationS: 30,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "collect",
			Demand:      resources.Vector{0.2, 0.1, 0.3, 0.3, 0.4, 5},
			Sensitivity: resources.Vector{0.20, 0.05, 0.15, 0.15, 0.40, 0.15},
			SoloIPC:     0.90,
			ColdStartMs: 200,
		}},
	}
}

// Monitor returns a scheduled-background monitoring workload (BG).
func Monitor() *Workload {
	return &Workload{
		Name:          "monitor",
		Class:         BG,
		SoloDurationS: 20,
		Instances:     1,
		Entry:         0,
		Functions: []Function{{
			Name:        "scrape",
			Demand:      resources.Vector{0.15, 0.08, 0.2, 0.2, 0.2, 2},
			Sensitivity: resources.Vector{0.18, 0.04, 0.12, 0.12, 0.30, 0.08},
			SoloIPC:     0.95,
			ColdStartMs: 150,
		}},
	}
}

// Catalog returns every benchmark workload, keyed by name.
func Catalog() map[string]*Workload {
	list := []*Workload{
		SocialNetwork(), ECommerce(), MLServing(), WebSearch(),
		MatMul(), DD(), Iperf(), VideoProcessing(), FloatOp(),
		LogisticRegression(), KMeans(), ImageResize(), WordCount(),
		FeatureGeneration(), DataPipeline(),
		IoTCollector(), Monitor(), CronCleanup(),
	}
	m := make(map[string]*Workload, len(list))
	for _, w := range list {
		m[w.Name] = w
	}
	return m
}

// MicroBenchmarks returns the four FunctionBench corunners of the
// Figure 3(a) volatility study: matmul (CPU), dd (disk), iperf
// (network) and video-processing (mixed).
func MicroBenchmarks() []*Workload {
	return []*Workload{MatMul(), DD(), Iperf(), VideoProcessing()}
}

// ByClass returns the catalog workloads of the given class, sorted by
// name order of the catalog listing.
func ByClass(c Class) []*Workload {
	var out []*Workload
	for _, w := range []*Workload{
		SocialNetwork(), ECommerce(), MLServing(), WebSearch(),
		MatMul(), DD(), Iperf(), VideoProcessing(), FloatOp(),
		LogisticRegression(), KMeans(), ImageResize(), WordCount(),
		FeatureGeneration(), DataPipeline(),
		IoTCollector(), Monitor(), CronCleanup(),
	} {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}
