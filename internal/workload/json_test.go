package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validJSON = `{
  "name": "user-app",
  "class": "LS",
  "entry": "front",
  "sla_p99_ms": 120,
  "max_qps": 500,
  "functions": [
    {
      "name": "front",
      "demand": {"cpu": 1, "memory_gb": 0.2, "llc_mb": 1.5, "membw_gbps": 1, "network_gbps": 0.3, "disk_mbps": 1},
      "sensitivity": {"cpu": 0.5, "memory_gb": 0.1, "llc_mb": 0.4, "membw_gbps": 0.4, "network_gbps": 0.3, "disk_mbps": 0.05},
      "solo_ipc": 1.3,
      "base_service_ms": 5,
      "calls": [{"callee": "back", "mode": "nested"}, {"callee": "log", "mode": "async"}]
    },
    {
      "name": "back",
      "demand": {"cpu": 1.5, "memory_gb": 0.4, "llc_mb": 3, "membw_gbps": 2, "network_gbps": 0.2, "disk_mbps": 4},
      "sensitivity": {"cpu": 0.6, "memory_gb": 0.1, "llc_mb": 0.6, "membw_gbps": 0.5, "network_gbps": 0.2, "disk_mbps": 0.1},
      "solo_ipc": 1.1,
      "base_service_ms": 8
    },
    {
      "name": "log",
      "demand": {"cpu": 0.2, "memory_gb": 0.1, "llc_mb": 0.3, "membw_gbps": 0.2, "network_gbps": 0.1, "disk_mbps": 10},
      "sensitivity": {"cpu": 0.2, "memory_gb": 0.05, "llc_mb": 0.1, "membw_gbps": 0.1, "network_gbps": 0.1, "disk_mbps": 0.3},
      "solo_ipc": 0.9,
      "base_service_ms": 2
    }
  ]
}`

func TestParseJSONValid(t *testing.T) {
	w, err := ParseJSON(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "user-app" || w.Class != LS || w.SLAp99Ms != 120 {
		t.Fatalf("header wrong: %+v", w)
	}
	if w.NumFunctions() != 3 || w.Entry != 0 {
		t.Fatalf("structure wrong: %d functions, entry %d", w.NumFunctions(), w.Entry)
	}
	front := w.Functions[0]
	if len(front.Calls) != 2 {
		t.Fatalf("front calls = %d", len(front.Calls))
	}
	if front.Calls[0].Mode != Nested || front.Calls[0].Callee != 1 {
		t.Fatalf("nested call wrong: %+v", front.Calls[0])
	}
	if front.Calls[1].Mode != Async || front.Calls[1].Callee != 2 {
		t.Fatalf("async call wrong: %+v", front.Calls[1])
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"junk":          `junk`,
		"unknown class": `{"name":"x","class":"XX","functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
		"unknown field": `{"name":"x","class":"LS","bogus":1,"functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
		"no name":       `{"name":"x","class":"SC","functions":[{"solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
		"dup name":      `{"name":"x","class":"SC","functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{}},{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
		"zero ipc":      `{"name":"x","class":"SC","functions":[{"name":"a","solo_ipc":0,"demand":{},"sensitivity":{}}]}`,
		"bad callee":    `{"name":"x","class":"SC","functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{},"calls":[{"callee":"ghost"}]}]}`,
		"bad mode":      `{"name":"x","class":"SC","functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{},"calls":[{"callee":"b","mode":"zig"}]},{"name":"b","solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
		"bad entry":     `{"name":"x","class":"SC","entry":"ghost","functions":[{"name":"a","solo_ipc":1,"demand":{},"sensitivity":{}}]}`,
	}
	for label, c := range cases {
		if _, err := ParseJSON(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted invalid definition", label)
		}
	}
}

func TestJSONRoundTripCatalog(t *testing.T) {
	// Every catalog workload must survive a write/parse round trip.
	for name, w := range Catalog() {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, w); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ParseJSON(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if back.Name != w.Name || back.Class != w.Class || back.NumFunctions() != w.NumFunctions() {
			t.Fatalf("%s: header changed", name)
		}
		if back.Entry != w.Entry {
			t.Fatalf("%s: entry changed: %d vs %d", name, back.Entry, w.Entry)
		}
		for f := range w.Functions {
			a, b := w.Functions[f], back.Functions[f]
			if a.Demand != b.Demand || a.Sensitivity != b.Sensitivity || a.SoloIPC != b.SoloIPC {
				t.Fatalf("%s/%s: archetype changed", name, a.Name)
			}
			if len(a.Calls) != len(b.Calls) || len(a.Phases) != len(b.Phases) {
				t.Fatalf("%s/%s: structure changed", name, a.Name)
			}
			for c := range a.Calls {
				if a.Calls[c] != b.Calls[c] {
					t.Fatalf("%s/%s: call %d changed", name, a.Name, c)
				}
			}
			for p := range a.Phases {
				if a.Phases[p] != b.Phases[p] {
					t.Fatalf("%s/%s: phase %d changed", name, a.Name, p)
				}
			}
		}
	}
}

func TestLoadJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	if err := writeFile(path, validJSON); err != nil {
		t.Fatal(err)
	}
	w, err := LoadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "user-app" {
		t.Fatal("wrong workload loaded")
	}
	if _, err := LoadJSONFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func FuzzParseJSON(f *testing.F) {
	f.Add(validJSON)
	f.Add(`{"name":"x","class":"SC","functions":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; a non-nil workload must validate.
		w, err := ParseJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("ParseJSON returned an invalid workload: %v", verr)
		}
	})
}
