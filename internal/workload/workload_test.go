package workload

import (
	"testing"

	"gsight/internal/resources"
)

func TestClassString(t *testing.T) {
	if BG.String() != "BG" || SC.String() != "SC" || LS.String() != "LS" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Fatal("invalid class name")
	}
}

func TestCallModeString(t *testing.T) {
	if Nested.String() != "nested" || Sequence.String() != "sequence" || Async.String() != "async" {
		t.Fatal("call mode names wrong")
	}
}

func TestCatalogValidates(t *testing.T) {
	cat := Catalog()
	if len(cat) != 18 {
		t.Fatalf("catalog size = %d, want 18", len(cat))
	}
	for name, w := range cat {
		if err := w.Validate(); err != nil {
			t.Errorf("catalog workload %q invalid: %v", name, err)
		}
		if w.Name != name {
			t.Errorf("catalog key %q != workload name %q", name, w.Name)
		}
	}
}

func TestSocialNetworkShape(t *testing.T) {
	sn := SocialNetwork()
	if sn.NumFunctions() != 9 {
		t.Fatalf("social network functions = %d, want 9 (Figure 2)", sn.NumFunctions())
	}
	if sn.Class != LS {
		t.Fatal("social network must be LS")
	}
	if sn.SLAp99Ms != 267 {
		t.Fatalf("social network SLA = %v, want 267 ms (§6.3)", sn.SLAp99Ms)
	}
	// Critical path ①→②→⑥→⑧→⑨ (indices 0,1,5,7,8).
	cp := sn.CriticalPath()
	want := []int{0, 1, 5, 7, 8}
	if len(cp) != len(want) {
		t.Fatalf("critical path = %v, want %v", cp, want)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", cp, want)
		}
	}
	// Non-critical functions ③④⑤⑦ (indices 2,3,4,6).
	for _, idx := range []int{2, 3, 4, 6} {
		if sn.OnCriticalPath(idx) {
			t.Errorf("function %q should be off the critical path", sn.Functions[idx].Name)
		}
	}
	for _, idx := range want {
		if !sn.OnCriticalPath(idx) {
			t.Errorf("function %q should be on the critical path", sn.Functions[idx].Name)
		}
	}
}

func TestECommerceSLA(t *testing.T) {
	ec := ECommerce()
	if ec.SLAp99Ms != 88 {
		t.Fatalf("e-commerce SLA = %v, want 88 ms (§6.3)", ec.SLAp99Ms)
	}
	if err := ec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparkJobs(t *testing.T) {
	lr := LogisticRegression()
	if lr.SoloDurationS != 429 {
		t.Fatalf("LR solo JCT = %v, want 429 s (Figure 3(b))", lr.SoloDurationS)
	}
	if lr.Instances != 60 {
		t.Fatalf("LR instances = %d, want 60", lr.Instances)
	}
	if len(lr.Functions[0].Phases) != 3 {
		t.Fatal("LR must have 3 phases (map, shuffle, reduce)")
	}
	// Shuffle phase must be the most interference-sensitive.
	ph := lr.Functions[0].Phases
	if ph[1].SensScale <= ph[0].SensScale || ph[1].SensScale <= ph[2].SensScale {
		t.Fatalf("LR shuffle phase must be most sensitive: %v", ph)
	}
	km := KMeans()
	if km.Instances != 60 {
		t.Fatal("KMeans instances must be 60")
	}
}

func TestMLServingIPCRatio(t *testing.T) {
	// Figure 13: CPU-intensive workloads run at ~1.6x the IPC of
	// I/O-intensive ones.
	ml := MLServing()
	sn := SocialNetwork()
	var mlIPC, snIPC float64
	for _, f := range ml.Functions {
		mlIPC += f.SoloIPC
	}
	mlIPC /= float64(len(ml.Functions))
	for _, f := range sn.Functions {
		snIPC += f.SoloIPC
	}
	snIPC /= float64(len(sn.Functions))
	ratio := mlIPC / snIPC
	if ratio < 1.4 || ratio > 1.9 {
		t.Fatalf("CPU/IO IPC ratio = %v, want ~1.6", ratio)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := &Workload{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty workload must not validate")
	}
	bad = &Workload{Name: "entry", Entry: 5, Functions: []Function{{Name: "a"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range entry must not validate")
	}
	bad = &Workload{Name: "callee", Functions: []Function{{Name: "a", Calls: []Call{{Callee: 7}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range callee must not validate")
	}
	bad = &Workload{Name: "self", Functions: []Function{{Name: "a", Calls: []Call{{Callee: 0}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("self call must not validate")
	}
	bad = &Workload{Name: "cycle", Functions: []Function{
		{Name: "a", Calls: []Call{{Callee: 1}}},
		{Name: "b", Calls: []Call{{Callee: 0}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("cyclic call graph must not validate")
	}
	bad = &Workload{Name: "phases", Functions: []Function{{
		Name:   "a",
		Phases: []Phase{{Frac: 0.5, SensScale: 1}},
	}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("phase fractions not summing to 1 must not validate")
	}
}

func TestPhaseAt(t *testing.T) {
	f := &Function{Phases: []Phase{
		{Frac: 0.5, SensScale: 1},
		{Frac: 0.3, SensScale: 2},
		{Frac: 0.2, SensScale: 3},
	}}
	if p, i := f.PhaseAt(0.0); i != 0 || p.SensScale != 1 {
		t.Fatalf("PhaseAt(0) = %d", i)
	}
	if p, i := f.PhaseAt(0.49); i != 0 || p.SensScale != 1 {
		t.Fatalf("PhaseAt(0.49) = %d", i)
	}
	if p, i := f.PhaseAt(0.6); i != 1 || p.SensScale != 2 {
		t.Fatalf("PhaseAt(0.6) = %d", i)
	}
	if p, i := f.PhaseAt(0.95); i != 2 || p.SensScale != 3 {
		t.Fatalf("PhaseAt(0.95) = %d", i)
	}
	if p, i := f.PhaseAt(1.5); i != 2 || p.SensScale != 3 {
		t.Fatalf("PhaseAt(1.5) = %d (should clamp to last)", i)
	}
}

func TestEffectivePhasesDefault(t *testing.T) {
	f := &Function{}
	ph := f.EffectivePhases()
	if len(ph) != 1 || ph[0].Frac != 1 || ph[0].SensScale != 1 {
		t.Fatalf("default phase wrong: %+v", ph)
	}
	if ph[0].DemandScale != (resources.Vector{1, 1, 1, 1, 1, 1}) {
		t.Fatalf("default demand scale wrong: %v", ph[0].DemandScale)
	}
}

func TestCloneIsDeep(t *testing.T) {
	sn := SocialNetwork()
	c := sn.Clone()
	c.Functions[0].Demand[0] = 999
	c.Functions[0].Calls[0].Callee = 3
	if sn.Functions[0].Demand[0] == 999 {
		t.Fatal("clone shares demand storage")
	}
	if sn.Functions[0].Calls[0].Callee == 3 {
		t.Fatal("clone shares calls storage")
	}
}

func TestFunctionIndex(t *testing.T) {
	sn := SocialNetwork()
	if got := sn.FunctionIndex("get-followers"); got != 8 {
		t.Fatalf("FunctionIndex(get-followers) = %d, want 8", got)
	}
	if got := sn.FunctionIndex("nope"); got != -1 {
		t.Fatalf("FunctionIndex(nope) = %d, want -1", got)
	}
}

func TestTotalDemand(t *testing.T) {
	w := &Workload{Functions: []Function{
		{Demand: resources.Vector{1, 2, 3, 4, 5, 6}},
		{Demand: resources.Vector{1, 1, 1, 1, 1, 1}},
	}}
	if got := w.TotalDemand(); got != (resources.Vector{2, 3, 4, 5, 6, 7}) {
		t.Fatalf("TotalDemand = %v", got)
	}
}

func TestByClass(t *testing.T) {
	ls := ByClass(LS)
	if len(ls) != 4 {
		t.Fatalf("LS workloads = %d, want 4", len(ls))
	}
	bg := ByClass(BG)
	if len(bg) != 3 {
		t.Fatalf("BG workloads = %d, want 3", len(bg))
	}
	sc := ByClass(SC)
	if len(sc) != 11 {
		t.Fatalf("SC workloads = %d, want 11", len(sc))
	}
}

func TestMicroBenchmarksAre4(t *testing.T) {
	mb := MicroBenchmarks()
	if len(mb) != 4 {
		t.Fatalf("micro-benchmarks = %d, want 4 (Figure 3(a))", len(mb))
	}
	names := map[string]bool{}
	for _, w := range mb {
		names[w.Name] = true
	}
	for _, want := range []string{"matmul", "dd", "iperf", "video-processing"} {
		if !names[want] {
			t.Errorf("missing micro-benchmark %q", want)
		}
	}
}

func TestIperfIsNetworkBound(t *testing.T) {
	ip := Iperf()
	f := ip.Functions[0]
	if f.Sensitivity[resources.Network] < 0.8 {
		t.Fatal("iperf must be network sensitive")
	}
	if f.Sensitivity[resources.CPU] > 0.3 {
		t.Fatal("iperf must not be CPU sensitive")
	}
}
