package scenario

import (
	"testing"

	"gsight/internal/core"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/workload"
)

func newGen(seed uint64) *Generator {
	m := perfmodel.New(resources.DefaultTestbed())
	FastConfig(m)
	return NewGenerator(m, seed)
}

func TestGeneratorProfilesPools(t *testing.T) {
	g := newGen(1)
	if g.Store.Len() != len(g.LSPool)+len(g.SCPool) {
		t.Fatalf("profiled %d workloads, want %d", g.Store.Len(), len(g.LSPool)+len(g.SCPool))
	}
	for _, w := range g.PoolWorkloads() {
		ps, ok := g.Store.Get(w.Name)
		if !ok || len(ps) != len(w.Functions) {
			t.Fatalf("workload %q not fully profiled", w.Name)
		}
	}
}

func TestColocationKinds(t *testing.T) {
	g := newGen(2)
	for _, kind := range []core.ColocationKind{core.LSLS, core.LSSC, core.SCSC} {
		sc := g.Colocation(kind, 3)
		if len(sc.Deployments) != 3 {
			t.Fatalf("%v: deployments = %d", kind, len(sc.Deployments))
		}
		hasLS, hasSC := false, false
		for _, d := range sc.Deployments {
			if d.W.Class == workload.LS {
				hasLS = true
			} else {
				hasSC = true
			}
			if err := d.Validate(8); err != nil {
				t.Fatalf("%v: invalid deployment: %v", kind, err)
			}
		}
		switch kind {
		case core.LSLS:
			if hasSC {
				t.Fatal("LSLS scenario contains SC")
			}
		case core.SCSC:
			if hasLS {
				t.Fatal("SCSC scenario contains LS")
			}
		case core.LSSC:
			if !hasLS || !hasSC {
				t.Fatal("LSSC scenario missing a class")
			}
		}
	}
}

func TestColocationClampsK(t *testing.T) {
	g := newGen(3)
	if got := len(g.Colocation(core.LSLS, 1).Deployments); got != 2 {
		t.Fatalf("k<2 should clamp to 2, got %d", got)
	}
	if got := len(g.Colocation(core.LSLS, 99).Deployments); got != g.MaxColocated {
		t.Fatalf("k>max should clamp to %d, got %d", g.MaxColocated, got)
	}
}

func TestLabelEmitsSamples(t *testing.T) {
	g := newGen(4)
	sc := g.Colocation(core.LSSC, 2)
	samples, err := g.Label(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range samples {
		if s.Label <= 0 {
			t.Fatalf("non-positive label %v for %v", s.Label, s.Kind)
		}
		if s.Target < 0 || s.Target >= len(s.Inputs) {
			t.Fatal("target out of range")
		}
		if s.Inputs[s.Target].Class == workload.BG {
			t.Fatal("BG workloads must not be predicted (the paper skips them)")
		}
	}
}

func TestDatasetEncodesAllKinds(t *testing.T) {
	g := newGen(5)
	coder := core.DefaultCoder()
	ds, err := g.Dataset(coder, core.LSSC, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds[core.IPCQoS].Len() == 0 {
		t.Fatal("no IPC samples")
	}
	for kind, d := range ds {
		for i, x := range d.X {
			if len(x) != coder.Dim() {
				t.Fatalf("%v sample %d has dim %d", kind, i, len(x))
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := newGen(7)
	b := newGen(7)
	sa := a.Colocation(core.LSSC, 3)
	sb := b.Colocation(core.LSSC, 3)
	if len(sa.Deployments) != len(sb.Deployments) {
		t.Fatal("scenario sizes differ")
	}
	for i := range sa.Deployments {
		da, db := sa.Deployments[i], sb.Deployments[i]
		if da.W.Name != db.W.Name || da.QPS != db.QPS || da.StartDelayS != db.StartDelayS {
			t.Fatalf("deployment %d differs: %s/%s", i, da.W.Name, db.W.Name)
		}
	}
	la, err := a.Label(sa)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Label(sb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range la {
		if la[i].Label != lb[i].Label {
			t.Fatalf("labels differ at %d: %v vs %v", i, la[i].Label, lb[i].Label)
		}
	}
}

func TestInputFrom(t *testing.T) {
	g := newGen(8)
	sn := workload.SocialNetwork()
	d := perfmodel.SpreadDeployment(sn, g.Model.Testbed)
	d.QPS = 300
	ps, _ := g.Store.Get(sn.Name)
	in := InputFrom(d, ps)
	if in.Name != "social-network" || in.Class != workload.LS {
		t.Fatal("identity wrong")
	}
	if in.QPSFrac != 0.5 {
		t.Fatalf("QPSFrac = %v, want 0.5", in.QPSFrac)
	}
	if in.LifetimeS != 0 {
		t.Fatal("LS lifetime must be 0")
	}
	// Mutating the input must not touch the deployment.
	in.Placement[0] = 7
	if d.Placement[0] == 7 {
		t.Fatal("InputFrom aliases placement")
	}

	mm := perfmodel.NewDeployment(workload.MatMul())
	mm.StartDelayS = 30
	mps, _ := g.Store.Get("matmul")
	min := InputFrom(mm, mps)
	if min.LifetimeS != 180 || min.StartDelayS != 30 {
		t.Fatalf("SC temporal fields wrong: %v %v", min.LifetimeS, min.StartDelayS)
	}
}

func TestInputWorkloadLevel(t *testing.T) {
	g := newGen(9)
	sn := workload.SocialNetwork()
	d := perfmodel.SpreadDeployment(sn, g.Model.Testbed)
	d.QPS = 300
	ps, _ := g.Store.Get(sn.Name)
	merged := profileMerged(ps)
	in := InputWorkloadLevel(d, merged)
	if len(in.Profiles) != 1 || len(in.Placement) != 1 {
		t.Fatal("workload-level input must be monolithic")
	}
	if in.Placement[0] != d.Placement[sn.Entry] {
		t.Fatal("monolith must sit at the entry's server")
	}
}

// profileMerged avoids importing profile under a clashing name.
func profileMerged(ps []profile.Profile) profile.Profile { return profile.Merged(ps) }
