// Package scenario generates the labeled colocation datasets on which
// Gsight and the baselines train and are evaluated. It plays the role
// of the paper's data-collection pipeline (§6.1): colocate workloads
// under randomized partial interference — varied placements, loads,
// start delays — run them on the simulated testbed, and record
// (solo profiles + interference code, measured QoS) pairs.
package scenario

import (
	"fmt"

	"gsight/internal/core"
	"gsight/internal/ml"
	"gsight/internal/perfmodel"
	"gsight/internal/profile"
	"gsight/internal/resources"
	"gsight/internal/rng"
	"gsight/internal/workload"
)

// InputFrom converts a deployment plus its solo-run profiles into the
// WorkloadInput the predictor is allowed to see. Deployments with a
// cold-start rate use startup-inclusive profiles, per §5.2.
func InputFrom(d *perfmodel.Deployment, ps []profile.Profile) core.WorkloadInput {
	if d.ColdStartFrac > 0 {
		blended := make([]profile.Profile, len(ps))
		for i, p := range ps {
			blended[i] = profile.WithStartup(p, d.ColdStartFrac)
		}
		ps = blended
	}
	in := core.WorkloadInput{
		Name:        d.W.Name,
		Class:       d.W.Class,
		Profiles:    ps,
		Placement:   append([]int(nil), d.Placement...),
		Replicas:    append([]int(nil), d.Replicas...),
		StartDelayS: d.StartDelayS,
	}
	if d.W.Class == workload.LS {
		in.QPSFrac = perfmodel.LoadFactor(d)
	} else {
		in.LifetimeS = d.W.SoloDurationS
	}
	return in
}

// InputWorkloadLevel converts a deployment using a single merged
// workload-level profile — the monolithic-profiling baseline of
// Figure 5, which discards the per-function placement structure.
func InputWorkloadLevel(d *perfmodel.Deployment, merged profile.Profile) core.WorkloadInput {
	in := core.WorkloadInput{
		Name:        d.W.Name,
		Class:       d.W.Class,
		Profiles:    []profile.Profile{merged},
		Placement:   []int{d.Placement[d.W.Entry]},
		Replicas:    []int{1},
		StartDelayS: d.StartDelayS,
	}
	if d.W.Class == workload.LS {
		in.QPSFrac = perfmodel.LoadFactor(d)
	} else {
		in.LifetimeS = d.W.SoloDurationS
	}
	return in
}

// Sample is one labeled observation: the workload set (target first is
// NOT implied — Target indexes into Inputs), and the measured QoS.
type Sample struct {
	Inputs []core.WorkloadInput
	Target int
	Kind   core.QoSKind
	Label  float64
	// Colocation is the §3.3 model form this sample belongs to.
	Colocation core.ColocationKind
}

// Generator produces randomized colocation scenarios and their labels.
type Generator struct {
	Model *perfmodel.Model
	Store *profile.Store
	// LS / SC pools to draw from (BG workloads ride along in the SC
	// pool; their class field distinguishes them).
	LSPool []*workload.Workload
	SCPool []*workload.Workload
	// MaxColocated bounds the workloads per scenario (paper n = 10).
	MaxColocated int
	rnd          *rng.Rand
	noise        *rng.Rand
}

// NewGenerator builds a generator over the default catalog pools,
// profiling every pool workload once (the solo-run phase).
func NewGenerator(m *perfmodel.Model, seed uint64) *Generator {
	g := &Generator{
		Model: m,
		Store: profile.NewStore(),
		LSPool: []*workload.Workload{
			workload.SocialNetwork(), workload.ECommerce(), workload.MLServing(),
		},
		SCPool: []*workload.Workload{
			workload.MatMul(), workload.DD(), workload.Iperf(),
			workload.VideoProcessing(), workload.FloatOp(),
			workload.LogisticRegression(), workload.KMeans(),
			workload.FeatureGeneration(), workload.DataPipeline(),
			workload.IoTCollector(), workload.Monitor(),
		},
		MaxColocated: 10,
		rnd:          rng.Stream(seed, "scenario"),
		noise:        rng.Stream(seed, "measurement"),
	}
	g.profilePools()
	return g
}

func (g *Generator) profilePools() {
	spec := g.Model.Testbed.Servers[0]
	for _, w := range append(append([]*workload.Workload{}, g.LSPool...), g.SCPool...) {
		if _, ok := g.Store.Get(w.Name); !ok {
			g.Store.ProfileWorkload(w, spec, g.rnd.Split())
		}
	}
}

// randomLSDeployment places an LS workload with a random contiguous
// spread across servers and a random load. The spread never drops
// below what CPU capacity plausibly supports: the paper's operating
// regime contains contention, not outright collapse — a production
// scheduler would never stack a workload's whole replica set past a
// server's core count.
func (g *Generator) randomLSDeployment(w *workload.Workload) *perfmodel.Deployment {
	d := perfmodel.NewDeployment(w)
	s := g.Model.Testbed.NumServers()
	base := g.rnd.Intn(s)
	totalCPU := 0.0
	for f := range w.Functions {
		totalCPU += w.Functions[f].Demand[resources.CPU] * float64(d.Replicas[f])
	}
	serverCPU := g.Model.Testbed.Servers[0].Capacity[resources.CPU]
	minSpan := int(totalCPU/(0.6*serverCPU)) + 1
	if minSpan > s {
		minSpan = s
	}
	span := minSpan
	if s > minSpan {
		span += g.rnd.Intn(s - minSpan + 1)
	}
	if span > s {
		span = s
	}
	for f := range d.Placement {
		d.Placement[f] = (base + f%span) % s
		d.Socket[f] = -1 // deterministic auto socket
	}
	d.QPS = w.MaxQPS * g.rnd.Range(0.2, 0.85)
	// Replica counts track the offered load, exactly as the platform's
	// autoscaler sizes them — training and serving must see the same
	// feature geometry.
	for f := range d.Replicas {
		d.Replicas[f] = perfmodel.LSReplicasFor(w, f, d.QPS*1.1)
	}
	return d
}

// randomSCDeployment places an SC/BG workload on a random server with a
// random start delay.
func (g *Generator) randomSCDeployment(w *workload.Workload) *perfmodel.Deployment {
	d := perfmodel.NewDeployment(w)
	s := g.Model.Testbed.NumServers()
	base := g.rnd.Intn(s)
	span := 1
	if len(d.Placement) > 1 {
		span = 1 + g.rnd.Intn(2)
	}
	for f := range d.Placement {
		d.Placement[f] = (base + f%span) % s
		d.Socket[f] = -1
	}
	d.StartDelayS = g.rnd.Range(0, 240)
	return d
}

// Colocation draws a random scenario of the requested kind with k
// workloads (k >= 2). Pass core.LSLS, core.LSSC or core.SCSC; any other
// value mixes freely.
func (g *Generator) Colocation(kind core.ColocationKind, k int) *perfmodel.Scenario {
	if k < 2 {
		k = 2
	}
	if k > g.MaxColocated {
		k = g.MaxColocated
	}
	var deps []*perfmodel.Deployment
	pick := func(pool []*workload.Workload) *workload.Workload {
		return pool[g.rnd.Intn(len(pool))].Clone()
	}
	switch kind {
	case core.LSLS:
		for i := 0; i < k; i++ {
			deps = append(deps, g.randomLSDeployment(pick(g.LSPool)))
		}
	case core.LSSC:
		nLS := 1 + g.rnd.Intn(k-1)
		for i := 0; i < nLS; i++ {
			deps = append(deps, g.randomLSDeployment(pick(g.LSPool)))
		}
		for i := nLS; i < k; i++ {
			deps = append(deps, g.randomSCDeployment(pick(g.SCPool)))
		}
	case core.SCSC:
		for i := 0; i < k; i++ {
			deps = append(deps, g.randomSCDeployment(pick(g.SCPool)))
		}
	default:
		for i := 0; i < k; i++ {
			if g.rnd.Bool(0.4) {
				deps = append(deps, g.randomLSDeployment(pick(g.LSPool)))
			} else {
				deps = append(deps, g.randomSCDeployment(pick(g.SCPool)))
			}
		}
	}
	return &perfmodel.Scenario{Deployments: deps}
}

// NoiseSplit draws an independent measurement-noise stream from the
// generator's noise sequence. Streams are drawn sequentially (each call
// advances the parent stream) and may then be consumed concurrently —
// the experiment harness's recipe for parallel labeling with
// byte-identical results.
func (g *Generator) NoiseSplit() *rng.Rand { return g.noise.Split() }

// Label evaluates a scenario on the testbed (with measurement noise)
// and emits one sample per deployment and applicable QoS kind.
func (g *Generator) Label(sc *perfmodel.Scenario) ([]Sample, error) {
	// Profile any workload outside the pre-profiled pools before
	// splitting the noise stream, so LabelWith itself stays free of
	// generator RNG use.
	for _, d := range sc.Deployments {
		if _, ok := g.Store.Get(d.W.Name); !ok {
			g.Store.ProfileWorkload(d.W, g.Model.Testbed.Servers[0], g.rnd.Split())
		}
	}
	return g.LabelWith(sc, g.noise.Split())
}

// LabelWith is Label with a caller-provided noise stream. It reads but
// never mutates the generator (no RNG draws, no store writes), so
// concurrent calls with pre-split streams are safe. Every workload in
// the scenario must already be profiled; pool workloads always are.
func (g *Generator) LabelWith(sc *perfmodel.Scenario, noise *rng.Rand) ([]Sample, error) {
	res, err := g.Model.Evaluate(sc, noise)
	if err != nil {
		return nil, err
	}
	inputs := make([]core.WorkloadInput, len(sc.Deployments))
	for i, d := range sc.Deployments {
		ps, ok := g.Store.Get(d.W.Name)
		if !ok {
			return nil, fmt.Errorf("scenario: workload %q not profiled", d.W.Name)
		}
		inputs[i] = InputFrom(d, ps)
	}
	kind := core.Classify(inputs)
	var out []Sample
	for i, d := range sc.Deployments {
		r := res.Deployments[i]
		switch d.W.Class {
		case workload.LS:
			out = append(out,
				Sample{inputs, i, core.IPCQoS, r.IPC, kind},
				Sample{inputs, i, core.TailLatencyQoS, r.E2EP99Ms, kind})
		case workload.SC:
			out = append(out,
				Sample{inputs, i, core.JCTQoS, r.JCTS, kind},
				Sample{inputs, i, core.IPCQoS, r.IPC, kind})
		default:
			// BG: the paper never predicts BG QoS.
		}
	}
	return out, nil
}

// Dataset generates n labeled scenarios of the given colocation kind
// and encodes them for the predictor, returning one dataset per QoS
// kind. The coder defines the feature layout.
func (g *Generator) Dataset(coder core.Coder, kind core.ColocationKind, nScenarios, maxWorkloads int) (map[core.QoSKind]*ml.Dataset, error) {
	out := map[core.QoSKind]*ml.Dataset{
		core.IPCQoS:         {},
		core.TailLatencyQoS: {},
		core.JCTQoS:         {},
	}
	for i := 0; i < nScenarios; i++ {
		k := 2
		if maxWorkloads > 2 {
			k = 2 + g.rnd.Intn(maxWorkloads-1)
		}
		sc := g.Colocation(kind, k)
		samples, err := g.Label(sc)
		if err != nil {
			return nil, err
		}
		for _, s := range samples {
			x, err := coder.Encode(s.Target, s.Inputs)
			if err != nil {
				return nil, fmt.Errorf("scenario: encode: %w", err)
			}
			out[s.Kind].Append(x, s.Label)
		}
	}
	return out, nil
}

// FastConfig reduces the co-execution resolution for bulk dataset
// generation; apply it to the model before constructing the generator
// when generating thousands of SC-bearing scenarios.
func FastConfig(m *perfmodel.Model) {
	m.Cfg.StepS = 5
	m.Cfg.FixedPointIters = 10
}

// PoolWorkloads returns every workload the generator draws from.
func (g *Generator) PoolWorkloads() []*workload.Workload {
	return append(append([]*workload.Workload{}, g.LSPool...), g.SCPool...)
}

// Rand exposes the generator's randomness stream (for experiment code
// that must stay reproducible with it).
func (g *Generator) Rand() *rng.Rand { return g.rnd }

// Spec returns the profiling server spec.
func (g *Generator) Spec() resources.ServerSpec { return g.Model.Testbed.Servers[0] }
