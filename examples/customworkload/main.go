// Custom workloads end-to-end: define an application declaratively in
// JSON, profile it, predict its QoS beside a catalog aggressor, and
// persist the profiles and trained model for the next controller
// restart — the operational loop a production Gsight deployment runs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gsight"
	"gsight/internal/ml"
	"gsight/internal/persist"
	"gsight/internal/profile"
	"gsight/internal/scenario"
	"gsight/internal/workload"
)

const appJSON = `{
  "name": "ticket-shop",
  "class": "LS",
  "entry": "storefront",
  "sla_p99_ms": 150,
  "max_qps": 400,
  "functions": [
    {
      "name": "storefront",
      "demand": {"cpu": 0.9, "memory_gb": 0.25, "llc_mb": 1.8, "membw_gbps": 1.2, "network_gbps": 0.4, "disk_mbps": 1},
      "sensitivity": {"cpu": 0.5, "memory_gb": 0.1, "llc_mb": 0.45, "membw_gbps": 0.4, "network_gbps": 0.3, "disk_mbps": 0.05},
      "solo_ipc": 1.28,
      "base_service_ms": 6,
      "cold_start_ms": 400,
      "calls": [{"callee": "inventory", "mode": "nested"}, {"callee": "audit", "mode": "async"}]
    },
    {
      "name": "inventory",
      "demand": {"cpu": 1.3, "memory_gb": 0.4, "llc_mb": 3.2, "membw_gbps": 2.1, "network_gbps": 0.25, "disk_mbps": 5},
      "sensitivity": {"cpu": 0.6, "memory_gb": 0.15, "llc_mb": 0.65, "membw_gbps": 0.55, "network_gbps": 0.2, "disk_mbps": 0.1},
      "solo_ipc": 1.07,
      "base_service_ms": 9,
      "cold_start_ms": 550,
      "calls": [{"callee": "payments", "mode": "sequence"}]
    },
    {
      "name": "payments",
      "demand": {"cpu": 0.6, "memory_gb": 0.2, "llc_mb": 1.0, "membw_gbps": 0.7, "network_gbps": 0.35, "disk_mbps": 2},
      "sensitivity": {"cpu": 0.45, "memory_gb": 0.1, "llc_mb": 0.3, "membw_gbps": 0.3, "network_gbps": 0.35, "disk_mbps": 0.05},
      "solo_ipc": 1.3,
      "base_service_ms": 5,
      "cold_start_ms": 380
    },
    {
      "name": "audit",
      "demand": {"cpu": 0.2, "memory_gb": 0.1, "llc_mb": 0.4, "membw_gbps": 0.3, "network_gbps": 0.1, "disk_mbps": 12},
      "sensitivity": {"cpu": 0.2, "memory_gb": 0.05, "llc_mb": 0.15, "membw_gbps": 0.15, "network_gbps": 0.1, "disk_mbps": 0.35},
      "solo_ipc": 0.92,
      "base_service_ms": 3,
      "cold_start_ms": 300
    }
  ]
}`

func main() {
	// 1. Parse the declarative workload definition.
	app, err := workload.ParseJSON(strings.NewReader(appJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d functions, critical path %v\n",
		app.Name, app.NumFunctions(), pathNames(app))

	// 2. Solo-run profile it and persist the profiles.
	model := gsight.NewTestbedModel()
	store := profile.NewStore()
	store.ProfileWorkload(app, model.Testbed.Servers[0], nil)
	dir, err := os.MkdirTemp("", "gsight-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "profiles.json")
	if err := persist.SaveStoreFile(storePath, store, []string{app.Name}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles persisted to %s\n", filepath.Base(storePath))

	// 3. Train a predictor on colocations that include the new app.
	gen := gsight.NewGenerator(model, 11)
	gen.LSPool = append(gen.LSPool, app)
	gen.Store.Put(app.Name, mustGet(store, app.Name))
	var obs []gsight.Observation
	collect := func(sc *gsight.Scenario) {
		samples, err := gen.Label(sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range samples {
			if s.Kind == gsight.IPCQoS {
				obs = append(obs, gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	for i := 0; i < 200; i++ {
		collect(gen.Colocation(gsight.LSSC, 2))
	}
	// Plus targeted colocations: aggressors placed exactly beside each
	// of the new app's functions at varying loads, as the paper's
	// characterization study does.
	for i := 0; i < 150; i++ {
		d := gsight.SpreadDeployment(app, model.Testbed)
		d.QPS = app.MaxQPS * (0.3 + 0.5*float64(i%5)/4)
		co := gsight.Catalog()["matmul"].Clone()
		if i%2 == 1 {
			co = gsight.Catalog()["video-processing"].Clone()
		}
		c := gsight.NewDeployment(co)
		target := (i / 2) % app.NumFunctions()
		c.Placement[0] = d.Placement[target]
		c.Socket[0] = d.Socket[target]
		collect(&gsight.Scenario{Deployments: []*gsight.Deployment{d, c}})
	}
	pred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 11})
	if err := pred.TrainObservations(gsight.IPCQoS, obs); err != nil {
		log.Fatal(err)
	}

	// 4. Predict the new app's IPC beside matmul and verify against
	//    the testbed ground truth.
	d := gsight.SpreadDeployment(app, model.Testbed)
	d.QPS = app.MaxQPS * 0.5
	mm := gsight.NewDeployment(gsight.Catalog()["matmul"].Clone())
	mm.Placement[0] = d.Placement[1] // beside inventory
	mm.Socket[0] = d.Socket[1]
	inputs := []gsight.WorkloadInput{
		scenario.InputFrom(d, mustGet(store, app.Name)),
		scenario.InputFrom(mm, mustGet2(gen, "matmul")),
	}
	predicted, err := pred.Predict(gsight.IPCQoS, 0, inputs)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{d, mm}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticket-shop IPC beside matmul: predicted %.3f, measured %.3f\n",
		predicted, truth.Deployments[0].IPC)

	// 5. Persist the trained forest; a restarted controller reloads it
	//    and keeps predicting without retraining.
	forest, ok := pred.Model(gsight.IPCQoS).(*ml.Forest)
	if !ok {
		log.Fatal("default model should be a forest")
	}
	var buf bytes.Buffer
	if err := ml.WriteForest(&buf, forest); err != nil {
		log.Fatal(err)
	}
	reloaded, err := ml.ReadForest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model survives restart: %d trees, %d KB on disk\n",
		reloaded.NumTrees(), buf.Len()/1024)
}

func pathNames(w *workload.Workload) []string {
	var names []string
	for _, i := range w.CriticalPath() {
		names = append(names, w.Functions[i].Name)
	}
	return names
}

func mustGet(s *profile.Store, name string) []profile.Profile {
	ps, ok := s.Get(name)
	if !ok {
		log.Fatalf("no profiles for %s", name)
	}
	return ps
}

func mustGet2(g *gsight.Generator, name string) []profile.Profile {
	ps, ok := g.Store.Get(name)
	if !ok {
		log.Fatalf("no profiles for %s", name)
	}
	return ps
}
