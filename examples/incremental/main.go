// Incremental learning under concept shift: the Figure 13 scenario on
// the public API. A predictor trained only on I/O-intensive workloads
// badly mispredicts CPU-intensive ones (their IPC runs ~1.6x higher);
// streaming in observations of the new regime recovers the error within
// a few update batches, because the incremental forest culls
// stale-regime trees.
package main

import (
	"fmt"
	"log"

	"gsight"
	"gsight/internal/scenario"
	"gsight/internal/workload"
)

func main() {
	model := gsight.NewTestbedModel()

	// Two worlds: I/O-intensive and CPU-intensive workload pools.
	ioGen := scenario.NewGenerator(model, 1)
	ioGen.LSPool = []*workload.Workload{workload.SocialNetwork(), workload.ECommerce()}
	ioGen.SCPool = []*workload.Workload{workload.DD(), workload.Iperf(), workload.DataPipeline()}

	cpuGen := scenario.NewGenerator(model, 2)
	cpuGen.LSPool = []*workload.Workload{workload.MLServing()}
	cpuGen.SCPool = []*workload.Workload{workload.MatMul(), workload.FloatOp(), workload.VideoProcessing()}

	collect := func(g *scenario.Generator, n int) []gsight.Observation {
		var out []gsight.Observation
		for i := 0; i < n; i++ {
			sc := g.Colocation(gsight.LSSC, 2)
			samples, err := g.Label(sc)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range samples {
				if s.Kind == gsight.IPCQoS {
					out = append(out, gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
				}
			}
		}
		return out
	}

	fmt.Println("training on the I/O-intensive world only...")
	pred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 7, UpdateEvery: 1 << 30})
	if err := pred.TrainObservations(gsight.IPCQoS, collect(ioGen, 300)); err != nil {
		log.Fatal(err)
	}

	cpuObs := collect(cpuGen, 400)
	test := cpuObs[:80]
	stream := cpuObs[80:]

	mape := func() float64 {
		sum, n := 0.0, 0
		for _, o := range test {
			got, err := pred.Predict(gsight.IPCQoS, o.Target, o.Inputs)
			if err != nil {
				log.Fatal(err)
			}
			e := (got - o.Label) / o.Label
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
		return 100 * sum / float64(n)
	}

	fmt.Printf("error on the unseen CPU-intensive world: %.1f%%\n", mape())
	fmt.Println("\nstreaming CPU-intensive observations in (incremental updates)...")
	const batch = 4
	for b := 0; b < batch; b++ {
		lo, hi := b*len(stream)/batch, (b+1)*len(stream)/batch
		for _, o := range stream[lo:hi] {
			if err := pred.Observe(gsight.IPCQoS, o.Target, o.Inputs, o.Label); err != nil {
				log.Fatal(err)
			}
		}
		if err := pred.Flush(gsight.IPCQoS); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after %3d samples: error %.1f%%\n", hi, mape())
	}
	fmt.Println("\nthe paper reports the same trajectory: 43.9% -> 4.6% after ~1k samples")
}
