// Scheduler bake-off: trains Gsight, then drives the trace-driven
// serverless platform for a few simulated hours under the Gsight
// binary-search scheduler, Pythia's Best Fit and Worst Fit, comparing
// function density, utilization and SLA compliance (the paper's §6.3
// case study in miniature). A final run repeats the Gsight case under
// the "chaos" fault scenario to show graceful degradation. Everything
// here uses only the root gsight package.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"gsight"
)

func main() {
	ctx := context.Background()
	model := gsight.NewTestbedModel()
	gen := gsight.NewGenerator(model, 42)
	cat := gsight.Catalog()

	// Bootstrap the predictors.
	fmt.Println("bootstrapping predictors on 400 labeled colocations...")
	var ipcObs, jctObs []gsight.Observation
	for i := 0; i < 400; i++ {
		sc := gen.Colocation(gsight.LSSC, 2)
		samples, err := gen.Label(sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range samples {
			o := gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
			switch s.Kind {
			case gsight.IPCQoS:
				ipcObs = append(ipcObs, o)
			case gsight.JCTQoS:
				jctObs = append(jctObs, o)
			}
		}
	}
	gsightPred := gsight.NewPredictor(gsight.PredictorConfig{}, gsight.WithSeed(42))
	must(gsightPred.TrainObservations(gsight.IPCQoS, ipcObs))
	must(gsightPred.TrainObservations(gsight.JCTQoS, jctObs))
	pythiaPred := gsight.NewPythia(43)
	must(pythiaPred.TrainObservations(gsight.IPCQoS, ipcObs))

	// SLAs via the latency->IPC transform (Figure 7).
	services := func() []gsight.PlatformService {
		var out []gsight.PlatformService
		for i, name := range []string{"social-network", "e-commerce"} {
			w := cat[name]
			curve := gsight.BuildCurve(model, w, 200, uint64(50+i))
			minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
			p := gsight.DefaultTracePattern(w.MaxQPS * 0.55)
			p.PhaseShift = float64(i) * 7200
			out = append(out, gsight.PlatformService{W: w, Pattern: p, SLA: gsight.SLA{MinIPC: minIPC}})
		}
		return out
	}

	const durationS = 4 * 3600
	chaos, err := gsight.FaultScenario("chaos", 42, durationS, 8)
	if err != nil {
		log.Fatal(err)
	}

	for _, entry := range []struct {
		name   string
		s      gsight.Scheduler
		faults *gsight.FaultSchedule
	}{
		{"Gsight (binary-search)", gsight.NewScheduler(gsightPred), nil},
		{"Pythia (best fit)", gsight.NewBestFit(pythiaPred), nil},
		{"Worst Fit (spread)", gsight.NewWorstFit(), nil},
		{"Gsight under chaos faults", gsight.NewScheduler(gsightPred), chaos},
	} {
		st, err := gsight.RunPlatform(ctx, gsight.PlatformConfig{
			Model:     gsight.NewTestbedModel(),
			Scheduler: entry.s,
			Services:  services(),
			SCPool: []*gsight.Workload{
				cat["matmul"], cat["dd"], cat["video-processing"], cat["float-op"],
			},
			SCMeanIntervalS: 180,
			DurationS:       durationS,
			StepS:           30,
			Seed:            42,
			Faults:          entry.faults,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", entry.name)
		fmt.Printf("  density  mean %.3f inst/core (p90 %.3f)\n",
			mean(st.Density), percentile(st.Density, 90))
		fmt.Printf("  CPU util mean %.3f, memory util mean %.3f\n",
			mean(st.CPUUtil), mean(st.MemUtil))
		fmt.Printf("  SLA: social-network %.1f%%, e-commerce %.1f%%\n",
			100*st.SLARatio("social-network"), 100*st.SLARatio("e-commerce"))
		fmt.Printf("  cold starts %d, reactive migrations %d\n", st.ColdStarts, st.Migrations)
		if entry.faults != nil {
			fmt.Printf("  faults: %d events, %d services + %d jobs displaced, %d degraded placements\n",
				st.FaultEvents, st.DisplacedServices, st.DisplacedJobs, st.DegradedPlacements)
			for _, d := range st.Degraded {
				fmt.Printf("  degraded [%.0fs, %.0fs): %s\n", d.StartS, d.EndS, d.Reason)
			}
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
