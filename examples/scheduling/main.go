// Scheduler bake-off: trains Gsight, then drives the trace-driven
// serverless platform for a few simulated hours under the Gsight
// binary-search scheduler, Pythia's Best Fit and Worst Fit, comparing
// function density, utilization and SLA compliance (the paper's §6.3
// case study in miniature).
package main

import (
	"fmt"
	"log"

	"gsight"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/sched"
	"gsight/internal/stats"
	"gsight/internal/trace"
)

func main() {
	model := gsight.NewTestbedModel()
	gen := gsight.NewGenerator(model, 42)
	cat := gsight.Catalog()

	// Bootstrap the predictors.
	fmt.Println("bootstrapping predictors on 400 labeled colocations...")
	var ipcObs, jctObs []gsight.Observation
	for i := 0; i < 400; i++ {
		sc := gen.Colocation(gsight.LSSC, 2)
		samples, err := gen.Label(sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range samples {
			o := gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
			switch s.Kind {
			case gsight.IPCQoS:
				ipcObs = append(ipcObs, o)
			case gsight.JCTQoS:
				jctObs = append(jctObs, o)
			}
		}
	}
	gsightPred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 42})
	must(gsightPred.TrainObservations(gsight.IPCQoS, ipcObs))
	must(gsightPred.TrainObservations(gsight.JCTQoS, jctObs))
	pythiaPred := gsight.NewPythia(43)
	must(pythiaPred.TrainObservations(gsight.IPCQoS, ipcObs))

	// SLAs via the latency->IPC transform (Figure 7).
	services := func() []platform.LSService {
		var out []platform.LSService
		for i, name := range []string{"social-network", "e-commerce"} {
			w := cat[name]
			curve := gsight.BuildCurve(model, w, 200, uint64(50+i))
			minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
			p := trace.DefaultPattern(w.MaxQPS * 0.55)
			p.PhaseShift = float64(i) * 7200
			out = append(out, platform.LSService{W: w, Pattern: p, SLA: sched.SLA{MinIPC: minIPC}})
		}
		return out
	}

	for _, entry := range []struct {
		name string
		s    sched.Scheduler
	}{
		{"Gsight (binary-search)", gsight.NewScheduler(gsightPred)},
		{"Pythia (best fit)", gsight.NewBestFit(pythiaPred)},
		{"Worst Fit (spread)", gsight.NewWorstFit()},
	} {
		st, err := platform.Run(platform.Config{
			Model:     perfmodel.New(model.Testbed),
			Scheduler: entry.s,
			Services:  services(),
			SCPool: []*gsight.Workload{
				cat["matmul"], cat["dd"], cat["video-processing"], cat["float-op"],
			},
			SCMeanIntervalS: 180,
			DurationS:       4 * 3600,
			StepS:           30,
			Seed:            42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", entry.name)
		fmt.Printf("  density  mean %.3f inst/core (p90 %.3f)\n",
			stats.Mean(st.Density), stats.Percentile(st.Density, 90))
		fmt.Printf("  CPU util mean %.3f, memory util mean %.3f\n",
			stats.Mean(st.CPUUtil), stats.Mean(st.MemUtil))
		fmt.Printf("  SLA: social-network %.1f%%, e-commerce %.1f%%\n",
			100*st.SLARatio("social-network"), 100*st.SLARatio("e-commerce"))
		fmt.Printf("  cold starts %d, reactive migrations %d\n", st.ColdStarts, st.Migrations)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
