// Scheduling walkthrough on the sharded-state API (DESIGN.md §14):
// trains Gsight, places workloads through snapshot-isolated
// transactions (including a forced commit conflict and its retry),
// drains a request stream through the concurrent placer pool at 1024
// servers, then runs the §6.3 platform bake-off — Gsight's
// binary-search scheduler vs Pythia's Best Fit and Worst Fit — plus a
// chaos-fault rerun to show graceful degradation. Everything here uses
// only the root gsight package.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"gsight"
)

func main() {
	ctx := context.Background()
	model := gsight.NewTestbedModel()
	gen := gsight.NewGenerator(model, 42)
	cat := gsight.Catalog()

	// Bootstrap the predictors.
	fmt.Println("bootstrapping predictors on 400 labeled colocations...")
	var ipcObs, jctObs []gsight.Observation
	for i := 0; i < 400; i++ {
		sc := gen.Colocation(gsight.LSSC, 2)
		samples, err := gen.Label(sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range samples {
			o := gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label}
			switch s.Kind {
			case gsight.IPCQoS:
				ipcObs = append(ipcObs, o)
			case gsight.JCTQoS:
				jctObs = append(jctObs, o)
			}
		}
	}
	gsightPred := gsight.NewPredictor(gsight.PredictorConfig{}, gsight.WithSeed(42))
	must(gsightPred.TrainObservations(gsight.IPCQoS, ipcObs))
	must(gsightPred.TrainObservations(gsight.JCTQoS, jctObs))
	pythiaPred := gsight.NewPythia(43)
	must(pythiaPred.TrainObservations(gsight.IPCQoS, ipcObs))

	// request builds a placement request from a labeled observation's
	// target workload, renamed so each request is a distinct tenant.
	request := func(i int, name string) *gsight.PlacementRequest {
		o := ipcObs[i%len(ipcObs)]
		in := o.Inputs[o.Target]
		in.Name = name
		return &gsight.PlacementRequest{Input: in, SLA: gsight.SLA{MinIPC: 0.5}}
	}

	// -- Transactional placement ------------------------------------
	// Placements are proposed against a snapshot and validated at
	// commit: two transactions that read the same window race, the
	// loser re-proposes against the fresh state.
	fmt.Println("\n== snapshot-isolated placement transactions ==")
	scheduler := gsight.NewScheduler(gsightPred)
	state := gsight.NewSchedulerState(model, gsight.WithShards(2))

	t1, t2 := state.Begin(), state.Begin()
	p1, err := t1.Propose(scheduler, request(0, "tenant-a"))
	must(err)
	_, err = t2.Propose(scheduler, request(0, "tenant-b"))
	must(err)
	must(t1.Commit())
	fmt.Printf("  txn 1 committed tenant-a at servers %v\n", p1)
	if err := t2.Commit(); errors.Is(err, gsight.ErrTxnConflict) {
		fmt.Println("  txn 2 conflicted (same window, stale epochs) — re-proposing...")
		p2, err := t2.Propose(scheduler, request(0, "tenant-b"))
		must(err)
		must(t2.Commit())
		fmt.Printf("  txn 2 committed tenant-b at servers %v on retry\n", p2)
	} else {
		must(err)
	}

	// -- The placer pool at cluster scale ---------------------------
	// 1024 servers, 8 epoch shards, 4 concurrent placers. Requests
	// hash to a fixed-size home window and spill outward only on
	// rejection, so per-placement cost is bounded by window size, not
	// cluster size — and results are byte-identical at any shard or
	// placer count.
	fmt.Println("\n== placer pool on a 1024-server cluster ==")
	big := gsight.NewSchedulerState(gsight.NewScaledTestbedModel(1024),
		gsight.WithShards(8))
	pool := gsight.NewPlacerPool(big,
		func() gsight.Scheduler { return gsight.NewScheduler(gsightPred) },
		gsight.WithPlacers(4))
	reqs := make([]*gsight.PlacementRequest, 512)
	for i := range reqs {
		reqs[i] = request(i, fmt.Sprintf("tenant-%03d", i))
	}
	t0 := time.Now()
	results := pool.PlaceAll(reqs)
	elapsed := time.Since(t0)
	placed, retries := 0, 0
	for _, r := range results {
		if r.Err == nil {
			placed++
		}
		retries += r.Retries
	}
	fmt.Printf("  placed %d/%d requests in %v (%.0f placements/s, %d commit retries)\n",
		placed, len(reqs), elapsed.Round(time.Millisecond),
		float64(len(reqs))/elapsed.Seconds(), retries)
	fmt.Printf("  servers: %d online, %d hosting work\n",
		big.OnlineServers(), big.ActiveServers())

	// -- Platform bake-off (§6.3 in miniature) ----------------------
	// SLAs via the latency->IPC transform (Figure 7).
	services := func() []gsight.PlatformService {
		var out []gsight.PlatformService
		for i, name := range []string{"social-network", "e-commerce"} {
			w := cat[name]
			curve := gsight.BuildCurve(model, w, 200, uint64(50+i))
			minIPC, _ := curve.MinIPCFor(w.SLAp99Ms)
			p := gsight.DefaultTracePattern(w.MaxQPS * 0.55)
			p.PhaseShift = float64(i) * 7200
			out = append(out, gsight.PlatformService{W: w, Pattern: p, SLA: gsight.SLA{MinIPC: minIPC}})
		}
		return out
	}

	const durationS = 4 * 3600
	chaos, err := gsight.FaultScenario("chaos", 42, durationS, 8)
	if err != nil {
		log.Fatal(err)
	}

	for _, entry := range []struct {
		name   string
		s      gsight.Scheduler
		faults *gsight.FaultSchedule
	}{
		{"Gsight (binary-search)", gsight.NewScheduler(gsightPred), nil},
		{"Pythia (best fit)", gsight.NewBestFit(pythiaPred), nil},
		{"Worst Fit (spread)", gsight.NewWorstFit(), nil},
		{"Gsight under chaos faults", gsight.NewScheduler(gsightPred), chaos},
	} {
		st, err := gsight.RunPlatform(ctx, gsight.PlatformConfig{
			Model:     gsight.NewTestbedModel(),
			Scheduler: entry.s,
			Services:  services(),
			SCPool: []*gsight.Workload{
				cat["matmul"], cat["dd"], cat["video-processing"], cat["float-op"],
			},
			SCMeanIntervalS: 180,
			DurationS:       durationS,
			StepS:           30,
			Seed:            42,
			Shards:          2, // sharded state in the runner; placements unchanged
			Faults:          entry.faults,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", entry.name)
		fmt.Printf("  density  mean %.3f inst/core (p90 %.3f)\n",
			mean(st.Density), percentile(st.Density, 90))
		fmt.Printf("  CPU util mean %.3f, memory util mean %.3f\n",
			mean(st.CPUUtil), mean(st.MemUtil))
		fmt.Printf("  SLA: social-network %.1f%%, e-commerce %.1f%%\n",
			100*st.SLARatio("social-network"), 100*st.SLARatio("e-commerce"))
		fmt.Printf("  cold starts %d, reactive migrations %d\n", st.ColdStarts, st.Migrations)
		if entry.faults != nil {
			fmt.Printf("  faults: %d events, %d services + %d jobs displaced, %d degraded placements\n",
				st.FaultEvents, st.DisplacedServices, st.DisplacedJobs, st.DegradedPlacements)
			for _, d := range st.Degraded {
				fmt.Printf("  degraded [%.0fs, %.0fs): %s\n", d.StartS, d.EndS, d.Reason)
			}
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
