// Quickstart: profile two workloads, colocate them on the simulated
// testbed, train Gsight on a few hundred labeled colocations, and
// compare its prediction against the measured QoS.
package main

import (
	"fmt"
	"log"

	"gsight"
)

func main() {
	// 1. The simulated 8-node testbed (Table 4 hardware).
	model := gsight.NewTestbedModel()

	// 2. A scenario generator: profiles every catalog workload solo
	//    (the paper's §3.2 profiling phase) and draws randomized
	//    colocations with ground-truth labels.
	gen := gsight.NewGenerator(model, 42)

	// 3. Bootstrap dataset: label 300 LS+SC/BG colocations.
	var obs []gsight.Observation
	for i := 0; i < 300; i++ {
		sc := gen.Colocation(gsight.LSSC, 2)
		samples, err := gen.Label(sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range samples {
			if s.Kind == gsight.IPCQoS {
				obs = append(obs, gsight.Observation{
					Target: s.Target, Inputs: s.Inputs, Label: s.Label,
				})
			}
		}
	}
	fmt.Printf("labeled %d colocation observations\n", len(obs))

	// 4. Train the Gsight predictor (incremental random forest over
	//    the spatial-temporal interference code).
	pred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 42})
	if err := pred.TrainObservations(gsight.IPCQoS, obs[:len(obs)-20]); err != nil {
		log.Fatal(err)
	}

	// 5. Predict held-out colocations and compare with ground truth.
	fmt.Println("\nheld-out predictions (IPC):")
	for _, o := range obs[len(obs)-20:] {
		got, err := pred.Predict(gsight.IPCQoS, o.Target, o.Inputs)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * abs(got-o.Label) / o.Label
		fmt.Printf("  %-18s predicted %.3f  measured %.3f  (%.1f%% off)\n",
			o.Inputs[o.Target].Name, got, o.Label, errPct)
	}

	// 6. The predictor keeps learning online: feed a measurement back.
	last := obs[len(obs)-1]
	if err := pred.Observe(gsight.IPCQoS, last.Target, last.Inputs, last.Label); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsamples seen so far: %d (model updates in batches as they stream in)\n",
		pred.SamplesSeen(gsight.IPCQoS))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
