// Social network under partial interference: reproduces the paper's
// motivating study (§2) on the public API — colocate the FunctionBench
// micro-benchmarks beside each of the nine message-posting functions
// and watch the end-to-end p99 latency swing (Observations 1 and 2),
// then demonstrate hotspot propagation (Observation 4).
package main

import (
	"fmt"
	"log"

	"gsight"
)

func main() {
	model := gsight.NewTestbedModel()
	cat := gsight.Catalog()
	sn := cat["social-network"]

	// Baseline: the social network alone, spread across the cluster at
	// half its maximum load.
	solo := gsight.SpreadDeployment(sn, model.Testbed)
	solo.QPS = sn.MaxQPS / 2
	base, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{solo}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solo: e2e p99 %.1f ms, IPC %.2f (SLA: %.0f ms)\n\n",
		base.Deployments[0].E2EP99Ms, base.Deployments[0].IPC, sn.SLAp99Ms)

	// Partial interference: each micro-benchmark beside each function.
	fmt.Println("e2e p99 (ms) with a corunner beside each function:")
	fmt.Printf("%-24s", "beside")
	micros := []string{"matmul", "dd", "iperf", "video-processing"}
	for _, m := range micros {
		fmt.Printf("  %16s", m)
	}
	fmt.Println()
	for f := 0; f < len(sn.Functions); f++ {
		fmt.Printf("fn%d %-20s", f+1, sn.Functions[f].Name)
		for _, mName := range micros {
			d := gsight.SpreadDeployment(sn, model.Testbed)
			d.QPS = sn.MaxQPS / 2
			c := gsight.NewDeployment(cat[mName].Clone())
			for cf := range c.Placement {
				c.Placement[cf] = d.Placement[f]
				c.Socket[cf] = d.Socket[f]
			}
			res, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{d, c}}, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %16.1f", res.Deployments[0].E2EP99Ms)
		}
		fmt.Println()
	}

	// Hotspot propagation: interference at the entry throttles the
	// whole chain — every other function's local latency drops.
	fmt.Println("\nhotspot propagation (matmul beside compose-post):")
	d := gsight.SpreadDeployment(sn, model.Testbed)
	d.QPS = sn.MaxQPS / 2
	c := gsight.NewDeployment(cat["matmul"].Clone())
	c.Placement[0] = d.Placement[0]
	c.Socket[0] = d.Socket[0]
	res, err := model.Evaluate(&gsight.Scenario{Deployments: []*gsight.Deployment{d, c}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for f, p := range res.Deployments[0].PerFunc {
		b := base.Deployments[0].PerFunc[f]
		arrow := "down"
		if p.LocalP99Ms > b.LocalP99Ms {
			arrow = "UP"
		}
		fmt.Printf("  fn%d %-20s local p99 %7.1f -> %7.1f ms (%s)\n",
			f+1, p.Name, b.LocalP99Ms, p.LocalP99Ms, arrow)
	}
	fmt.Printf("effective load fell from %.0f to %.0f qps — the closed loop at work\n",
		base.Deployments[0].EffQPS, res.Deployments[0].EffQPS)
}
