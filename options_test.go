package gsight_test

import (
	"context"
	"errors"
	"testing"

	"gsight"
)

func TestWithSeedOverridesConfig(t *testing.T) {
	obs := trainingSet(t, 60)
	predict := func(p *gsight.Predictor) float64 {
		if err := p.TrainObservations(gsight.IPCQoS, obs); err != nil {
			t.Fatal(err)
		}
		v, err := p.Predict(gsight.IPCQoS, obs[0].Target, obs[0].Inputs)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	base := predict(gsight.NewPredictor(gsight.PredictorConfig{Seed: 1}, gsight.WithSeed(7)))
	same := predict(gsight.NewPredictor(gsight.PredictorConfig{Seed: 7}))
	if base != same {
		t.Fatalf("WithSeed(7) != Seed:7 config: %v vs %v", base, same)
	}
}

func TestWithFallbackServesDegradedPlacements(t *testing.T) {
	// An untrained predictor makes the Gsight scheduler error; the
	// fallback option turns that into a served placement.
	st := testState(t)
	req := testRequest(t)
	bare := gsight.NewScheduler(gsight.NewPredictor(gsight.PredictorConfig{Seed: 3}))
	if _, err := bare.Place(st, req); err == nil {
		t.Fatal("untrained scheduler without fallback must error")
	}
	with := gsight.NewScheduler(gsight.NewPredictor(gsight.PredictorConfig{Seed: 3}),
		gsight.WithFallback(gsight.NewWorstFit()))
	placement, err := with.Place(st, req)
	if err != nil {
		t.Fatalf("fallback did not serve the placement: %v", err)
	}
	if len(placement) == 0 {
		t.Fatal("empty placement")
	}
}

func TestInapplicableOptionsIgnored(t *testing.T) {
	// A shared option list configures predictor and scheduler alike;
	// options that do not apply are silently ignored.
	opts := []gsight.Option{
		gsight.WithSeed(5),
		gsight.WithTelemetry(gsight.NewTelemetry()),
		gsight.WithFallback(gsight.NewWorstFit()),
	}
	p := gsight.NewPredictor(gsight.PredictorConfig{}, opts...)
	s := gsight.NewScheduler(p, opts...)
	if s == nil || p == nil {
		t.Fatal("constructors rejected a mixed option list")
	}
}

func TestRunPlatformRootAPI(t *testing.T) {
	m := gsight.NewTestbedModel()
	cat := gsight.Catalog()
	sch, err := gsight.FaultScenario("predictor-outage", 42, 1800, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := gsight.RunPlatform(nil, gsight.PlatformConfig{
		Model:     m,
		Scheduler: gsight.NewWorstFit(),
		Services: []gsight.PlatformService{
			{W: cat["social-network"], Pattern: gsight.DefaultTracePattern(250), SLA: gsight.SLA{MinIPC: 0.9}},
		},
		DurationS: 1800,
		StepS:     30,
		Seed:      42,
		Faults:    sch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultEvents == 0 {
		t.Fatal("fault scenario produced no events through the root API")
	}
	if len(st.Degraded) == 0 {
		t.Fatal("predictor outage left no degraded interval")
	}
}

func TestRunExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gsight.RunExperiment(ctx, "fig3a", gsight.ExperimentOptions{Seed: 1, Scale: 0.02}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// trainingSet draws labeled colocations from the scenario generator.
func trainingSet(t *testing.T, n int) []gsight.Observation {
	t.Helper()
	gen := gsight.NewGenerator(gsight.NewTestbedModel(), 99)
	var obs []gsight.Observation
	for len(obs) < n {
		samples, err := gen.Label(gen.Colocation(gsight.LSSC, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if s.Kind == gsight.IPCQoS {
				obs = append(obs, gsight.Observation{Target: s.Target, Inputs: s.Inputs, Label: s.Label})
			}
		}
	}
	return obs[:n]
}

func testState(t *testing.T) *gsight.SchedulerState {
	t.Helper()
	return gsight.NewSchedulerState(gsight.NewTestbedModel())
}

func testRequest(t *testing.T) *gsight.PlacementRequest {
	t.Helper()
	gen := gsight.NewGenerator(gsight.NewTestbedModel(), 17)
	samples, err := gen.Label(gen.Colocation(gsight.LSSC, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	return &gsight.PlacementRequest{Input: s.Inputs[s.Target], SLA: gsight.SLA{MinIPC: 0.5}}
}
