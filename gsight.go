// Package gsight is a from-scratch Go reproduction of "Understanding,
// Predicting and Scheduling Serverless Workloads under Partial
// Interference" (Zhao et al., SC '21): the Gsight QoS predictor —
// spatial-temporal interference coding over solo-run function profiles,
// learned by an incremental random forest — together with the
// binary-search scheduler built on it, the ESP/Pythia comparison
// predictors, and a simulated 8-node serverless testbed (performance
// model, OpenFaaS-style platform, Azure-like traces) that regenerates
// every table and figure of the paper's evaluation.
//
// This root package re-exports the library's public surface; the
// implementation lives under internal/ (see DESIGN.md for the module
// map). A typical flow:
//
//	m := gsight.NewTestbedModel()                 // simulated cluster
//	gen := gsight.NewGenerator(m, 42)             // profiling + scenarios
//	pred := gsight.NewPredictor(gsight.PredictorConfig{Seed: 42})
//	... train on labeled colocations, then:
//	scheduler := gsight.NewScheduler(pred)        // §4's binary search
//
// See examples/ for runnable programs and cmd/gsight-experiments for
// the paper-reproduction harness.
package gsight

import (
	"context"

	"gsight/internal/baselines"
	"gsight/internal/core"
	"gsight/internal/experiments"
	"gsight/internal/faults"
	"gsight/internal/obs"
	"gsight/internal/perfmodel"
	"gsight/internal/platform"
	"gsight/internal/resources"
	"gsight/internal/scenario"
	"gsight/internal/sched"
	"gsight/internal/telemetry"
	"gsight/internal/trace"
	"gsight/internal/workload"
)

// Option configures a constructor. Options compose left to right; an
// option that does not apply to the component being built is ignored,
// so a shared option list can configure a predictor and a scheduler
// alike.
type Option func(*options)

type options struct {
	seed     *uint64
	sink     *telemetry.Sink
	fallback sched.Scheduler
	shards   int
	placers  int
	topk     int
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithSeed overrides the component's RNG seed (predictors).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = &seed }
}

// WithTelemetry instruments the component with the sink (predictors and
// schedulers). TelemetryNop (nil) keeps it uninstrumented.
func WithTelemetry(s *TelemetrySink) Option {
	return func(o *options) { o.sink = s }
}

// WithFallback sets the scheduler's degraded-mode policy: placements
// the predictor cannot vet (untrained, erroring) are served by s
// instead of being rejected (schedulers).
func WithFallback(s Scheduler) Option {
	return func(o *options) { o.fallback = s }
}

// WithShards partitions scheduler-state epoch bookkeeping into n cells
// (NewSchedulerState, PlatformConfig via NewPlatformConfig helpers).
// Placement outcomes are shard-count-independent; shards only refine
// conflict detection under concurrent placers. <= 1 means one shard —
// exact legacy behavior.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithPlacers sets the number of concurrent placer workers draining a
// placement queue (NewPlacerPool). <= 1 means serial; results are
// byte-identical at any worker count.
func WithPlacers(k int) Option {
	return func(o *options) { o.placers = k }
}

// WithTopK enables two-tier placement (NewScheduler): the predictor's
// tier-0 interference scorer prunes the candidate servers to the top K
// before full IRFR prediction vets the finalists. <= 0 means K=∞ —
// pruning disabled, exact legacy placements.
func WithTopK(k int) Option {
	return func(o *options) { o.topk = k }
}

// Core predictor types (§3).
type (
	// Predictor is the Gsight performance predictor.
	Predictor = core.Predictor
	// PredictorConfig parameterizes NewPredictor.
	PredictorConfig = core.Config
	// QoSPredictor is the interface Gsight shares with the baselines.
	QoSPredictor = core.QoSPredictor
	// QoSKind selects the predicted metric (IPC, tail latency, JCT).
	QoSKind = core.QoSKind
	// Observation is one labeled colocation.
	Observation = core.Observation
	// WorkloadInput is the predictor-visible description of a deployed
	// workload.
	WorkloadInput = core.WorkloadInput
	// Coder is the paper's spatial-temporal interference code layout.
	Coder = core.Coder
	// ColocationKind classifies colocations (LS+LS, LS+SC/BG, ...).
	ColocationKind = core.ColocationKind
)

// QoS kinds.
const (
	IPCQoS         = core.IPCQoS
	TailLatencyQoS = core.TailLatencyQoS
	JCTQoS         = core.JCTQoS
)

// Colocation kinds.
const (
	LSLS = core.LSLS
	LSSC = core.LSSC
	SCSC = core.SCSC
	BGBG = core.BGBG
)

// NewPredictor returns an untrained Gsight predictor (IRFR by default).
// Options refine the struct config: WithSeed overrides cfg.Seed,
// WithTelemetry instruments the predictor.
func NewPredictor(cfg PredictorConfig, opts ...Option) *Predictor {
	o := buildOptions(opts)
	if o.seed != nil {
		cfg.Seed = *o.seed
	}
	p := core.NewPredictor(cfg)
	if o.sink != nil {
		p.Instrument(o.sink)
	}
	return p
}

// DefaultCoder returns the paper's 8-server, 10-workload code layout.
func DefaultCoder() Coder { return core.DefaultCoder() }

// Baseline predictors (Table 2 comparisons).
var (
	// NewESP builds the ESP baseline (4 microarchitecture metrics).
	NewESP = baselines.NewESP
	// NewPythia builds the Pythia baseline (workload-level linear
	// regression).
	NewPythia = baselines.NewPythia
)

// Workload modeling.
type (
	// Workload is a call-path DAG of serverless functions.
	Workload = workload.Workload
	// Function is one serverless function archetype.
	Function = workload.Function
	// WorkloadClass is BG, SC or LS.
	WorkloadClass = workload.Class
)

// Workload classes.
const (
	BG = workload.BG
	SC = workload.SC
	LS = workload.LS
)

// Catalog returns the benchmark catalog (social network, e-commerce,
// FunctionBench micro set, SparkBench jobs, ...).
func Catalog() map[string]*Workload { return workload.Catalog() }

// Simulated testbed.
type (
	// Model is the ground-truth performance model of the cluster.
	Model = perfmodel.Model
	// Deployment places a workload's functions onto servers.
	Deployment = perfmodel.Deployment
	// Scenario is a set of colocated deployments.
	Scenario = perfmodel.Scenario
	// Testbed describes the cluster hardware.
	Testbed = resources.Testbed
)

// NewTestbedModel returns the Table 4 cluster: 8 nodes of 40-core Xeon
// E7-4820v4 class hardware.
func NewTestbedModel() *Model {
	return perfmodel.New(resources.DefaultTestbed())
}

// NewScaledTestbedModel returns a cluster of n testbed-class nodes —
// the scaled target the sharded scheduling state (DESIGN.md §14)
// places against. NewTestbedModel is the paper's 8-node instance.
func NewScaledTestbedModel(n int) *Model {
	return perfmodel.New(resources.NewTestbed(n))
}

// NewDeployment places every function of w on server 0 (maximal
// overlap); SpreadDeployment spreads round-robin.
func NewDeployment(w *Workload) *Deployment { return perfmodel.NewDeployment(w) }

// SpreadDeployment places w's functions round-robin across the testbed.
func SpreadDeployment(w *Workload, tb *Testbed) *Deployment {
	return perfmodel.SpreadDeployment(w, tb)
}

// Scenario generation and labeling.
type (
	// Generator draws randomized labeled colocations.
	Generator = scenario.Generator
	// Sample is one labeled observation from a generator.
	Sample = scenario.Sample
)

// NewGenerator builds a scenario generator over the benchmark catalog,
// profiling every workload once (the solo-run phase).
func NewGenerator(m *Model, seed uint64) *Generator { return scenario.NewGenerator(m, seed) }

// Scheduling (§4, sharded-state redesign in DESIGN.md §14).
type (
	// Scheduler decides placements.
	Scheduler = sched.Scheduler
	// SLA is a workload's admission contract.
	SLA = sched.SLA
	// SchedulerState is the scheduler's cluster state: a sharded,
	// transaction-capable wrapper whose ClusterView surface is what
	// schedulers read. At one shard it behaves exactly like the
	// pre-sharding direct state.
	SchedulerState = sched.ShardedState
	// DirectState is the flat cluster state SchedulerState wraps.
	//
	// Deprecated: construct a SchedulerState (NewSchedulerState) and use
	// Base() for direct field surgery; this alias remains for callers of
	// the pre-sharding API.
	DirectState = sched.State
	// ClusterView is the read-only cluster surface schedulers consume.
	ClusterView = sched.ClusterView
	// SchedulerTxn is one snapshot-isolated placement transaction
	// (Begin/Propose/Commit with commit-time conflict detection).
	SchedulerTxn = sched.Txn
	// PlacerPool drains placement requests through K concurrent
	// workers with deterministic, serial-equivalent results.
	PlacerPool = sched.PlacerPool
	// PlaceResult is one request's outcome from a PlacerPool.
	PlaceResult = sched.PlaceResult
	// PlacementRequest asks for a workload placement.
	PlacementRequest = sched.Request
	// Curve is a latency-IPC correlation curve (Figure 7).
	Curve = sched.Curve
)

// ErrTxnConflict is returned by SchedulerTxn.Commit when another commit
// touched the proposal's window first; re-propose and retry.
var ErrTxnConflict = sched.ErrTxnConflict

// NewScheduler returns the Gsight binary-search scheduler around a
// trained predictor. Options: WithTelemetry instruments it,
// WithFallback serves predictor-errored placements through a backup
// policy (outcome "degraded") instead of rejecting them.
func NewScheduler(p QoSPredictor, opts ...Option) *sched.Gsight {
	o := buildOptions(opts)
	g := sched.NewGsight(p)
	if o.fallback != nil {
		g.Fallback = o.fallback
	}
	if o.topk > 0 {
		if cp, ok := p.(*core.Predictor); ok {
			g.Tier0 = cp.Tier0()
			g.TopK = o.topk
		}
	}
	if o.sink != nil {
		g.Instrument(o.sink)
	}
	return g
}

// NewSchedulerState returns an empty scheduler cluster state sized to
// the model's testbed. WithShards partitions its epoch bookkeeping;
// the default is one shard (exact legacy behavior).
func NewSchedulerState(m *Model, opts ...Option) *SchedulerState {
	o := buildOptions(opts)
	return sched.ShardedStateFromProfiles(m.Testbed.Servers[0], m.Testbed.NumServers(), o.shards)
}

// NewDirectState returns the flat pre-sharding cluster state.
//
// Deprecated: use NewSchedulerState; it is placement-identical and
// adds the transaction/sharding surface.
func NewDirectState(m *Model) *DirectState {
	return sched.StateFromProfiles(m.Testbed.Servers[0], m.Testbed.NumServers())
}

// NewPlacerPool builds a placer pool over the state. WithPlacers sets
// the worker count (default 1 — serial). factory must return a fresh
// Scheduler per call; workers never share one.
func NewPlacerPool(s *SchedulerState, factory func() Scheduler, opts ...Option) *PlacerPool {
	o := buildOptions(opts)
	return sched.NewPlacerPool(s, o.placers, factory)
}

// NewBestFit returns Pythia's Best Fit policy.
func NewBestFit(p QoSPredictor) *sched.BestFit { return sched.NewBestFit(p) }

// NewWorstFit returns the spreading strawman.
func NewWorstFit() *sched.WorstFit { return sched.NewWorstFit() }

// BuildCurve calibrates a workload's latency-IPC curve on the model
// testbed (the §6.3 SLA transformation source).
var BuildCurve = sched.BuildCurve

// Observability (see DESIGN.md §10).
type (
	// TelemetrySink bundles a metrics registry with an optional JSONL
	// decision log; pass it to Instrument methods and platform configs.
	TelemetrySink = telemetry.Sink
	// TelemetryRunReport is the exportable JSON summary of a run.
	TelemetryRunReport = telemetry.RunReport
)

// NewTelemetry returns a live sink with a fresh metrics registry.
var NewTelemetry = telemetry.New

// TelemetryNop is the disabled sink: instrumenting with it is exactly
// equivalent to not instrumenting at all (bit-identical, alloc-neutral).
var TelemetryNop = telemetry.Nop

// ServeDebug starts the background debug HTTP server (/metrics in
// Prometheus text format, /debug/vars, /debug/pprof).
var ServeDebug = telemetry.ServeDebug

// Run recording (DESIGN.md §13): invocation-lifecycle tracing, the
// step-sampled flight recorder, and online prediction-quality tracking.
type (
	// Recorder bundles a run's observability streams; pass it to
	// PlatformConfig.Obs. A nil *Recorder disables recording with zero
	// overhead.
	Recorder = obs.Recorder
	// RecorderConfig selects which streams a Recorder writes.
	RecorderConfig = obs.Config
	// TraceTracer streams lifecycle events as Chrome trace-event JSON
	// (loadable in Perfetto).
	TraceTracer = obs.Tracer
	// FlightRecording is a decoded flight-recorder stream.
	FlightRecording = obs.FlightData
	// FlightFrame is one step sample of cluster state.
	FlightFrame = obs.Frame
	// PredictionQuality is the online rolling-error and drift tracker.
	PredictionQuality = obs.PredQ
	// PredictionDrift describes one Page–Hinkley drift detection.
	PredictionDrift = obs.DriftInfo
)

// NewRecorder builds a run recorder writing the configured streams.
var NewRecorder = obs.New

// ReadFlightRecording decodes a flight-recorder stream (flight.bin
// from gsight-sim -record), dropping a torn final frame.
var ReadFlightRecording = obs.ReadFlight

// Experiments: the paper-reproduction harness.
type (
	// ExperimentReport is one regenerated table or figure.
	ExperimentReport = experiments.Report
	// ExperimentOptions scales experiment effort.
	ExperimentOptions = experiments.Options
)

// RunExperiment regenerates the table/figure with the given id
// ("table1", "fig3a", ..., "fig14", "ext-resilience"). A nil ctx means
// context.Background(); cancellation stops the experiment between
// units of work.
func RunExperiment(ctx context.Context, id string, opt ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Run(ctx, id, opt)
}

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }

// DefaultExperimentOptions returns full-scale, seed-42 options.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Platform: the trace-driven serverless platform simulation (§6.3).
type (
	// PlatformConfig parameterizes RunPlatform.
	PlatformConfig = platform.Config
	// PlatformStats aggregates a platform run's outcomes.
	PlatformStats = platform.Stats
	// PlatformService is one resident latency-sensitive service.
	PlatformService = platform.LSService
	// PlatformRetryPolicy bounds placement retries on transient errors.
	PlatformRetryPolicy = platform.RetryPolicy
	// DegradedInterval is a window of simulation time spent placing
	// through the fallback policy.
	DegradedInterval = platform.DegradedInterval
	// TracePattern shapes a service's request-rate trace.
	TracePattern = trace.Pattern
	// PlatformCheckpoint configures crash-consistent checkpointing of a
	// platform run (PlatformConfig.Checkpoint, DESIGN.md §12).
	PlatformCheckpoint = platform.CheckpointConfig
	// CheckpointMeta summarizes the newest valid checkpoint on disk.
	CheckpointMeta = platform.CheckpointMeta
)

// ErrControllerCrashed is returned by RunPlatform when an injected
// "controller-crash" fault kills the run. With checkpointing enabled,
// rerunning with PlatformCheckpoint.Resume continues from the newest
// snapshot and reproduces the uninterrupted run byte-for-byte.
var ErrControllerCrashed = platform.ErrControllerCrashed

// PeekPlatformCheckpoint inspects a checkpoint directory without
// restoring anything: callers use it to decide whether to resume and
// how far to truncate an interrupted decision log.
var PeekPlatformCheckpoint = platform.PeekCheckpoint

// DefaultTracePattern returns the Azure-like diurnal + bursts + noise
// pattern around a base request rate.
var DefaultTracePattern = trace.DefaultPattern

// RunPlatform executes a trace-driven platform simulation: resident
// autoscaled LS services, arriving batch jobs, a pluggable scheduler,
// SLA monitoring with reactive control — and, when cfg.Faults is set,
// deterministic fault injection with graceful degradation. A nil ctx
// means context.Background().
func RunPlatform(ctx context.Context, cfg PlatformConfig) (*PlatformStats, error) {
	return platform.Run(ctx, cfg)
}

// Fault injection (DESIGN.md §11).
type (
	// FaultSchedule is a deterministic timeline of fault events.
	FaultSchedule = faults.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// FaultKind names a fault event type ("node-crash", "slow-node",
	// "cold-start-storm", "predictor-down", ...).
	FaultKind = faults.Kind
)

// FaultScenario builds a named seeded scenario ("node-crash",
// "rolling-crashes", "stragglers", "cold-start-storm",
// "predictor-outage", "chaos") sized to a run's duration and cluster.
var FaultScenario = faults.Scenario

// FaultScenarioNames lists the named fault scenarios.
var FaultScenarioNames = faults.Names

// LoadFaultSchedule reads a JSON fault schedule from a file.
var LoadFaultSchedule = faults.LoadFile
